#include "chaos/process_orchestrator.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

namespace asnap::chaos {

namespace {
using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;
}  // namespace

ProcessCluster::ProcessCluster(ProcessClusterConfig config)
    : config_(std::move(config)), procs_(config_.endpoints.size()) {}

ProcessCluster::~ProcessCluster() { stop(); }

bool ProcessCluster::spawn_locked(std::size_t i) {
  const std::string dir = config_.state_dir + "/replica-" + std::to_string(i);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return false;
  const std::string log_path = dir + "/daemon.log";

  std::string peers;
  for (std::size_t j = 0; j < config_.endpoints.size(); ++j) {
    if (j != 0) peers += ',';
    peers += config_.endpoints[j].host + ':' +
             std::to_string(config_.endpoints[j].port);
  }
  const std::string id = std::to_string(i);
  const std::string regs = std::to_string(config_.regs);

  // argv must outlive execv in the child; build it before forking. The
  // daemon derives its own replica-<id>/ subdir from the shared state dir,
  // so its WAL lands next to the daemon.log we pre-create here.
  std::vector<std::string> arg_strs = {
      config_.replicad_path, "--id", id, "--peers", peers,
      "--state-dir", config_.state_dir, "--regs", regs};
  if (!config_.fsync) arg_strs.push_back("--no-fsync");
  std::vector<char*> argv;
  argv.reserve(arg_strs.size() + 1);
  for (auto& s : arg_strs) argv.push_back(s.data());
  argv.push_back(nullptr);

  // Pre-open the log so the child only needs async-signal-safe calls
  // (dup2/execv/_exit) between fork and exec — this process has threads.
  const int log_fd =
      ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (log_fd < 0) return false;

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(log_fd);
    return false;
  }
  if (pid == 0) {
    ::dup2(log_fd, STDOUT_FILENO);
    ::dup2(log_fd, STDERR_FILENO);
    ::close(log_fd);
    ::execv(argv[0], argv.data());
    _exit(127);
  }
  ::close(log_fd);
  procs_[i].pid = pid;
  procs_[i].want_up = true;
  procs_[i].down = false;
  procs_[i].stalled = false;
  return true;
}

bool ProcessCluster::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return true;
  std::error_code ec;
  fs::create_directories(config_.state_dir, ec);
  if (ec) return false;
  if (config_.proxy) {
    proxy_ = std::make_unique<net::ChaosProxy>(config_.endpoints,
                                               config_.proxy_seed);
    if (!proxy_->start()) {
      proxy_.reset();
      return false;
    }
    client_endpoints_ = proxy_->endpoints();
  } else {
    client_endpoints_ = config_.endpoints;
  }
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    if (!spawn_locked(i)) return false;
  }
  started_ = true;
  supervisor_ = std::jthread([this](std::stop_token st) { supervise(st); });
  return true;
}

const std::vector<net::Endpoint>& ProcessCluster::client_endpoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  return client_endpoints_.empty() ? config_.endpoints : client_endpoints_;
}

bool ProcessCluster::wait_ready(std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    const std::string log_path = config_.state_dir + "/replica-" +
                                 std::to_string(i) + "/daemon.log";
    for (;;) {
      {
        std::ifstream in(log_path);
        std::string line;
        bool ready = false;
        while (std::getline(in, line)) {
          if (line.rfind("READY", 0) == 0) {
            ready = true;
            break;
          }
        }
        if (ready) break;
      }
      if (Clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  return true;
}

void ProcessCluster::supervise(std::stop_token st) {
  while (!st.stop_requested()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto now = Clock::now();
      for (std::size_t i = 0; i < procs_.size(); ++i) {
        Proc& p = procs_[i];
        if (p.pid > 0) {
          int status = 0;
          const pid_t got = ::waitpid(p.pid, &status, WNOHANG);
          if (got == p.pid) {
            p.pid = -1;
            p.down = true;
            p.stalled = false;  // death clears a stop
            p.died_at = now;
            p.respawn_at = now + config_.restart_delay;
          }
        }
        if (p.down && p.want_up && config_.auto_restart &&
            now >= p.respawn_at) {
          if (spawn_locked(i)) {
            ++report_.restarts;
            report_.restart_latencies_ms.push_back(
                std::chrono::duration<double, std::milli>(now - p.died_at)
                    .count());
          } else {
            // Spawn failed (transient?): retry after another delay.
            p.respawn_at = now + config_.restart_delay;
          }
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

bool ProcessCluster::kill9(std::size_t i) {
  std::lock_guard<std::mutex> lock(mu_);
  Proc& p = procs_[i];
  if (p.pid <= 0) return false;
  if (::kill(p.pid, SIGKILL) != 0) return false;
  ++report_.kills;
  return true;
}

bool ProcessCluster::stall(std::size_t i) {
  std::lock_guard<std::mutex> lock(mu_);
  Proc& p = procs_[i];
  if (p.pid <= 0 || p.stalled) return false;
  if (::kill(p.pid, SIGSTOP) != 0) return false;
  p.stalled = true;
  ++report_.stalls;
  return true;
}

bool ProcessCluster::resume(std::size_t i) {
  std::lock_guard<std::mutex> lock(mu_);
  Proc& p = procs_[i];
  if (p.pid <= 0 || !p.stalled) return false;
  if (::kill(p.pid, SIGCONT) != 0) return false;
  p.stalled = false;
  return true;
}

std::size_t ProcessCluster::unavailable() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    const Proc& p = procs_[i];
    // Union, not sum: a replica that is both SIGSTOPped and blackholed is
    // still only one replica that might not answer.
    if (p.down || p.stalled || p.pid <= 0 ||
        (proxy_ != nullptr && proxy_->impaired(i))) {
      ++n;
    }
  }
  return n;
}

bool ProcessCluster::running(std::size_t i) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Proc& p = procs_[i];
  return p.pid > 0 && !p.stalled;
}

ProcessCluster::Report ProcessCluster::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  return report_;
}

void ProcessCluster::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  supervisor_.request_stop();
  if (supervisor_.joinable()) supervisor_.join();
  if (proxy_ != nullptr) proxy_->stop();
  std::lock_guard<std::mutex> lock(mu_);
  for (Proc& p : procs_) {
    p.want_up = false;
    if (p.pid > 0) {
      if (p.stalled) ::kill(p.pid, SIGCONT);  // a stopped child can't exit
      ::kill(p.pid, SIGTERM);
    }
  }
  const auto grace_end = Clock::now() + std::chrono::seconds(2);
  for (Proc& p : procs_) {
    if (p.pid <= 0) continue;
    for (;;) {
      int status = 0;
      const pid_t got = ::waitpid(p.pid, &status, WNOHANG);
      if (got == p.pid) {
        p.pid = -1;
        break;
      }
      if (Clock::now() >= grace_end) {
        ::kill(p.pid, SIGKILL);
        ::waitpid(p.pid, &status, 0);
        p.pid = -1;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

}  // namespace asnap::chaos
