#include "chaos/orchestrator.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "abd/abd_snapshot.hpp"
#include "common/rng.hpp"
#include "lin/history.hpp"
#include "lin/snapshot_checker.hpp"
#include "trace/event.hpp"

namespace asnap::chaos {

namespace {

using Clock = std::chrono::steady_clock;
using lin::Tag;
using Snapshot = abd::MessagePassingSnapshot<Tag>;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

std::uint64_t to_ns(Clock::duration d) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

std::chrono::microseconds uniform_between(Rng& rng,
                                          std::chrono::microseconds lo,
                                          std::chrono::microseconds hi) {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>((hi - lo).count());
  return lo + std::chrono::microseconds(rng.below(span + 1));
}

/// Per-worker state. Atomics are the watchdog-facing surface; the rest is
/// worker-private until the worker thread is joined.
struct WorkerState {
  std::atomic<std::uint64_t> op_start_ns{0};  ///< 0 = no op in flight
  std::atomic<std::uint64_t> last_success_ns{0};
  std::atomic<std::uint64_t> updates_ok{0};
  std::atomic<std::uint64_t> scans_ok{0};
  std::atomic<std::uint64_t> failed_update_attempts{0};
  std::atomic<std::uint64_t> failed_scans{0};

  bool has_pending = false;  ///< update unfinished at shutdown (indeterminate)
  Tag pending_tag;
  lin::Time pending_inv = 0;

  trace::LogHistogram update_hist;
  trace::LogHistogram scan_hist;
};

void worker_loop(Snapshot& snap, lin::Recorder& recorder, WorkerState& ws,
                 ProcessId p, const OrchestratorOptions& opt,
                 const std::atomic<bool>& stop) {
  std::uint64_t seq = 0;
  std::uint64_t op_count = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    if (op_count++ % 2 == 0) {
      // Update: retry the SAME tag until it lands. A timed-out attempt is
      // indeterminate, so the logical operation's interval must span every
      // attempt — one recorded op from the first invocation to the
      // successful response.
      const Tag tag{p, ++seq};
      const lin::Time inv = recorder.tick();
      const auto started = Clock::now();
      ws.op_start_ns.store(now_ns(), std::memory_order_relaxed);
      for (;;) {
        if (snap.try_update(p, tag)) break;
        ws.failed_update_attempts.fetch_add(1, std::memory_order_relaxed);
        if (stop.load(std::memory_order_relaxed)) {
          // Shutdown with the attempt unresolved: possibly applied.
          ws.has_pending = true;
          ws.pending_tag = tag;
          ws.pending_inv = inv;
          ws.op_start_ns.store(0, std::memory_order_relaxed);
          return;
        }
        std::this_thread::sleep_for(opt.op_retry_pause);
      }
      const lin::Time res = recorder.tick();
      recorder.add_update(p, p, tag, inv, res);
      ws.update_hist.record(to_ns(Clock::now() - started));
      ws.updates_ok.fetch_add(1, std::memory_order_relaxed);
      ws.last_success_ns.store(now_ns(), std::memory_order_relaxed);
      ws.op_start_ns.store(0, std::memory_order_relaxed);
    } else {
      // Scan: a failed scan observed nothing, so it is simply dropped.
      const lin::Time inv = recorder.tick();
      const auto started = Clock::now();
      ws.op_start_ns.store(now_ns(), std::memory_order_relaxed);
      std::optional<std::vector<Tag>> view = snap.try_scan(p);
      if (view.has_value()) {
        const lin::Time res = recorder.tick();
        recorder.add_scan(p, std::move(*view), inv, res);
        ws.scan_hist.record(to_ns(Clock::now() - started));
        ws.scans_ok.fetch_add(1, std::memory_order_relaxed);
        ws.last_success_ns.store(now_ns(), std::memory_order_relaxed);
      } else {
        ws.failed_scans.fetch_add(1, std::memory_order_relaxed);
        ws.op_start_ns.store(0, std::memory_order_relaxed);
        std::this_thread::sleep_for(opt.op_retry_pause);
        continue;
      }
      ws.op_start_ns.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace

Schedule random_schedule(std::size_t nodes, const ChaosProfile& profile,
                         std::uint64_t seed) {
  Rng rng(seed ^ 0xC4A0C4A0C4A0ULL);
  Schedule sched;
  const double dur_s = std::chrono::duration<double>(profile.duration).count();
  const auto dur_us = static_cast<std::uint64_t>(profile.duration.count());
  const std::size_t max_down = nodes >= 1 ? (nodes - 1) / 2 : 0;

  // Lossy-network plan: flat from t=0, or ramped to full drop_prob across
  // the first half of the run.
  if (profile.loss_ramp_steps > 0) {
    for (std::uint32_t s = 1; s <= profile.loss_ramp_steps; ++s) {
      Action a;
      a.kind = ActionKind::kSetFaultPlan;
      a.at = profile.duration / 2 * (s - 1) / profile.loss_ramp_steps;
      a.plan = profile.plan;
      a.plan.drop_prob =
          profile.plan.drop_prob * s / profile.loss_ramp_steps;
      sched.actions.push_back(std::move(a));
    }
  } else if (profile.plan.drop_prob > 0 || profile.plan.dup_prob > 0 ||
             profile.plan.delay_prob > 0) {
    Action a;
    a.kind = ActionKind::kSetFaultPlan;
    a.plan = profile.plan;
    sched.actions.push_back(std::move(a));
  }

  // Crash/recover pairs, capped so scheduled outages never overlap on one
  // node and never exceed floor((n-1)/2) concurrently.
  struct Outage {
    std::chrono::microseconds start, end;
    net::NodeId node;
  };
  std::vector<Outage> outages;
  const auto n_crashes =
      static_cast<std::size_t>(profile.crash_rate_hz * dur_s + 0.5);
  for (std::size_t c = 0; c < n_crashes && dur_us > 0; ++c) {
    const auto at = std::chrono::microseconds(rng.below(dur_us));
    const auto len =
        uniform_between(rng, profile.min_outage, profile.max_outage);
    const auto end = std::min(at + len, profile.duration);
    const auto node = static_cast<net::NodeId>(rng.below(nodes));
    std::size_t concurrent = 0;
    bool clash = false;
    for (const Outage& o : outages) {
      if (at < o.end && o.start < end) {
        if (o.node == node) clash = true;
        ++concurrent;
      }
    }
    if (clash || concurrent >= max_down) continue;
    outages.push_back(Outage{at, end, node});
    Action crash;
    crash.kind = ActionKind::kCrash;
    crash.at = at;
    crash.node = node;
    sched.actions.push_back(std::move(crash));
    // Fallback restart at outage end; the supervisor usually wins the race
    // (recover() of a live node is a no-op).
    Action restart;
    restart.kind = ActionKind::kRecover;
    restart.at = end;
    restart.node = node;
    sched.actions.push_back(std::move(restart));
  }

  // Partition/heal pairs: one partition at a time, minority sized so that
  // together with concurrently-scheduled outages at most max_down nodes
  // are unusable.
  struct Window {
    std::chrono::microseconds start, end;
  };
  std::vector<Window> windows;
  const auto n_parts =
      static_cast<std::size_t>(profile.partition_rate_hz * dur_s + 0.5);
  for (std::size_t c = 0; c < n_parts && dur_us > 0; ++c) {
    const auto at = std::chrono::microseconds(rng.below(dur_us));
    const auto len =
        uniform_between(rng, profile.min_partition, profile.max_partition);
    const auto end = std::min(at + len, profile.duration);
    bool clash = false;
    for (const Window& w : windows) {
      if (at < w.end && w.start < end) clash = true;
    }
    if (clash) continue;
    std::size_t outages_during = 0;
    for (const Outage& o : outages) {
      if (at < o.end && o.start < end) ++outages_during;
    }
    if (outages_during >= max_down) continue;
    const std::size_t k =
        1 + rng.below(static_cast<std::uint64_t>(max_down - outages_during));
    std::vector<net::NodeId> order(nodes);
    for (std::size_t i = 0; i < nodes; ++i) {
      order[i] = static_cast<net::NodeId>(i);
    }
    for (std::size_t i = nodes - 1; i > 0; --i) {  // Fisher–Yates
      std::swap(order[i], order[rng.below(i + 1)]);
    }
    Action part;
    part.kind = ActionKind::kPartition;
    part.at = at;
    part.groups = {{order.begin(), order.begin() + static_cast<long>(k)},
                   {order.begin() + static_cast<long>(k), order.end()}};
    sched.actions.push_back(std::move(part));
    Action heal;
    heal.kind = ActionKind::kHeal;
    heal.at = end;
    sched.actions.push_back(std::move(heal));
    windows.push_back(Window{at, end});
  }

  std::stable_sort(sched.actions.begin(), sched.actions.end(),
                   [](const Action& a, const Action& b) { return a.at < b.at; });
  return sched;
}

RunReport run(const OrchestratorOptions& opt) {
  const std::size_t n = opt.nodes;
  const std::size_t majority = n / 2 + 1;

  RunReport report;
  std::mutex report_mu;  // violations + detection latencies
  const auto add_violation = [&](std::string what) {
    std::lock_guard lock(report_mu);
    report.violations.push_back(std::move(what));
  };

  // Injection-side view of the cluster, shared with the watchdog: which
  // nodes the current partition isolates from the main component, and
  // which crash injections await their first suspicion (detection
  // latency). Declared before `snap` so the detector callback and worker
  // threads (joined by snap's destructor / inner scopes) never outlive
  // them.
  std::vector<std::atomic<bool>> isolated(n);
  std::vector<std::atomic<std::uint64_t>> crash_pending(n);
  for (std::size_t i = 0; i < n; ++i) {
    isolated[i].store(false, std::memory_order_relaxed);
    crash_pending[i].store(0, std::memory_order_relaxed);
  }

  Snapshot snap(n, Tag{}, opt.seed, opt.abd);
  if (opt.self_healing) {
    Snapshot::SelfHealingConfig heal;
    heal.detector = opt.detector;
    heal.supervisor = opt.supervisor;
    heal.detector_callback = [&](net::NodeId, net::NodeId target,
                                 bool suspected) {
      if (!suspected) return;
      // First suspicion after an injected crash claims the pending stamp.
      const std::uint64_t t =
          crash_pending[target].exchange(0, std::memory_order_acq_rel);
      if (t == 0) return;
      std::lock_guard lock(report_mu);
      report.detection_latencies.emplace_back(now_ns() - t);
    };
    snap.enable_self_healing(heal);
  }

  lin::Recorder recorder(n);
  std::vector<std::unique_ptr<WorkerState>> workers_state;
  for (std::size_t p = 0; p < n; ++p) {
    workers_state.push_back(std::make_unique<WorkerState>());
    workers_state.back()->last_success_ns.store(now_ns(),
                                                std::memory_order_relaxed);
  }
  std::atomic<bool> stop{false};

  // How many nodes are currently usable (alive and in the main partition
  // component); liveness can only be demanded of clients while at least a
  // majority is.
  const auto usable_count = [&] {
    std::size_t usable = 0;
    for (std::size_t p = 0; p < n; ++p) {
      if (!snap.crashed(static_cast<ProcessId>(p)) &&
          !isolated[p].load(std::memory_order_relaxed)) {
        ++usable;
      }
    }
    return usable;
  };

  const auto apply = [&](const Action& a) {
    switch (a.kind) {
      case ActionKind::kCrash: {
        if (snap.crashed(a.node)) break;
        // Refuse an injection that would leave the main component without
        // a majority: the schedule's safety rail assumed outage windows
        // that self-healing may have reshaped.
        std::size_t usable_after = 0;
        for (std::size_t p = 0; p < n; ++p) {
          if (p != a.node && !snap.crashed(static_cast<ProcessId>(p)) &&
              !isolated[p].load(std::memory_order_relaxed)) {
            ++usable_after;
          }
        }
        if (usable_after < majority) break;
        snap.crash(a.node);
        crash_pending[a.node].store(now_ns(), std::memory_order_release);
        ++report.crashes_injected;
        ASNAP_TRACE_EVENT(trace::EventKind::kChaosAction, 0,
                          static_cast<std::uint64_t>(a.kind), a.node);
        break;
      }
      case ActionKind::kRecover:
        // Fallback restart; races (and loses to) the supervisor by design —
        // recover() of a live node is a no-op.
        snap.recover(a.node);
        ASNAP_TRACE_EVENT(trace::EventKind::kChaosAction, 0,
                          static_cast<std::uint64_t>(a.kind), a.node);
        break;
      case ActionKind::kPartition: {
        if (a.groups.empty()) break;
        snap.partition(a.groups);
        // Everything outside the largest group is isolated.
        std::size_t main_group = 0;
        for (std::size_t g = 1; g < a.groups.size(); ++g) {
          if (a.groups[g].size() > a.groups[main_group].size()) main_group = g;
        }
        for (std::size_t g = 0; g < a.groups.size(); ++g) {
          if (g == main_group) continue;
          for (const net::NodeId p : a.groups[g]) {
            isolated[p].store(true, std::memory_order_relaxed);
          }
        }
        ++report.partitions_injected;
        ASNAP_TRACE_EVENT(trace::EventKind::kChaosAction, 0,
                          static_cast<std::uint64_t>(a.kind),
                          a.groups.size());
        break;
      }
      case ActionKind::kHeal:
        snap.heal();
        for (std::size_t p = 0; p < n; ++p) {
          isolated[p].store(false, std::memory_order_relaxed);
        }
        ASNAP_TRACE_EVENT(trace::EventKind::kChaosAction, 0,
                          static_cast<std::uint64_t>(a.kind), 0);
        break;
      case ActionKind::kSetFaultPlan:
        snap.set_fault_plan(a.plan);
        ASNAP_TRACE_EVENT(
            trace::EventKind::kChaosAction, 0,
            static_cast<std::uint64_t>(a.kind),
            static_cast<std::uint64_t>(a.plan.drop_prob * 1000.0));
        break;
    }
  };

  {
    std::vector<std::jthread> workers;
    for (std::size_t p = 0; p < n; ++p) {
      workers.emplace_back([&, p] {
        worker_loop(snap, recorder, *workers_state[p],
                    static_cast<ProcessId>(p), opt, stop);
      });
    }

    // Liveness watchdog: flags a worker whose node has been healthy for a
    // full stall window yet still has an operation in flight from before
    // the window, or has completed nothing inside it.
    std::jthread watchdog([&](std::stop_token st) {
      std::vector<std::uint64_t> healthy_since(n, now_ns());
      std::vector<bool> flagged(n, false);
      const auto stall =
          static_cast<std::uint64_t>(std::chrono::duration_cast<
                                         std::chrono::nanoseconds>(
                                         opt.watchdog_stall)
                                         .count());
      while (!st.stop_requested()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        const std::uint64_t now = now_ns();
        const bool quorum = usable_count() >= majority;
        for (std::size_t p = 0; p < n; ++p) {
          // A node that came back before anyone suspected it forfeits its
          // detection-latency sample; expire the stamp so a later unrelated
          // suspicion cannot claim it.
          if (!snap.crashed(static_cast<ProcessId>(p))) {
            crash_pending[p].store(0, std::memory_order_relaxed);
          }
          if (!quorum || snap.crashed(static_cast<ProcessId>(p)) ||
              isolated[p].load(std::memory_order_relaxed)) {
            healthy_since[p] = now;
            continue;
          }
          if (flagged[p]) continue;
          const WorkerState& ws = *workers_state[p];
          const std::uint64_t started =
              ws.op_start_ns.load(std::memory_order_relaxed);
          if (started != 0 &&
              now - std::max(started, healthy_since[p]) > stall) {
            flagged[p] = true;
            add_violation("liveness: operation by healthy node " +
                          std::to_string(p) + " blocked past the stall window");
            continue;
          }
          const std::uint64_t last =
              ws.last_success_ns.load(std::memory_order_relaxed);
          if (now - std::max(last, healthy_since[p]) > stall) {
            flagged[p] = true;
            add_violation("liveness: healthy node " + std::to_string(p) +
                          " completed no operation inside the stall window");
          }
        }
      }
    });

    // Injection timeline.
    const auto start = Clock::now();
    for (const Action& a : opt.schedule.actions) {
      std::this_thread::sleep_until(start + a.at);
      apply(a);
    }
    std::this_thread::sleep_until(start + opt.duration);

    // Injection over: heal the network and demand convergence.
    snap.heal();
    for (std::size_t p = 0; p < n; ++p) {
      isolated[p].store(false, std::memory_order_relaxed);
    }
    snap.set_fault_plan(net::FaultPlan{});
    if (!opt.self_healing) {
      for (std::size_t p = 0; p < n; ++p) {
        if (snap.crashed(static_cast<ProcessId>(p))) {
          snap.recover(static_cast<ProcessId>(p));
        }
      }
    }
    const auto converge_by = Clock::now() + opt.convergence_timeout;
    while (snap.alive_count() < n && Clock::now() < converge_by) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (snap.alive_count() < n) {
      add_violation("liveness: " + std::to_string(n - snap.alive_count()) +
                    " node(s) still down after the convergence timeout");
    }

    // Healthy-network tail so pending same-tag retries resolve.
    std::this_thread::sleep_for(opt.quiesce_tail);
    watchdog.request_stop();
    watchdog.join();
    stop.store(true, std::memory_order_relaxed);
  }  // workers join

  // Updates unfinished at shutdown are indeterminate: possibly applied any
  // time up to now, so their interval extends to a final clock tick taken
  // after every worker stopped.
  const lin::Time final_tick = recorder.tick();
  for (std::size_t p = 0; p < n; ++p) {
    WorkerState& ws = *workers_state[p];
    if (!ws.has_pending) continue;
    recorder.add_update(static_cast<ProcessId>(p), p, ws.pending_tag,
                        ws.pending_inv, final_tick);
    ++report.indeterminate_updates;
  }

  const lin::History history = recorder.take();
  report.history_ops = history.total_ops();
  if (const auto violation = lin::check_single_writer(history)) {
    add_violation("linearizability: " + *violation);
  }

  for (std::size_t p = 0; p < n; ++p) {
    const WorkerState& ws = *workers_state[p];
    report.updates_ok += ws.updates_ok.load(std::memory_order_relaxed);
    report.scans_ok += ws.scans_ok.load(std::memory_order_relaxed);
    report.failed_update_attempts +=
        ws.failed_update_attempts.load(std::memory_order_relaxed);
    report.failed_scans += ws.failed_scans.load(std::memory_order_relaxed);
    report.update_latency_ns.merge(ws.update_hist);
    report.scan_latency_ns.merge(ws.scan_hist);
  }
  if (const net::FailureDetector* fd = snap.detector()) {
    report.suspicions = fd->suspicions();
    report.trusts = fd->trusts();
  }
  if (const auto* sup = snap.supervisor()) {
    report.recoveries = sup->recoveries();
    report.failed_recovery_attempts = sup->failed_attempts();
    report.recovery_latencies = sup->recovery_latencies();
  }
  report.protocol_rounds = snap.protocol_rounds();
  report.fast_reads = snap.fast_reads();
  report.fast_fallbacks = snap.fast_fallbacks();
  report.retransmits = snap.retransmits_sent();
  report.round_timeouts = snap.round_timeouts();
  report.breaker_skips = snap.breaker_skips();
  report.fail_fasts = snap.fail_fasts();
  report.stale_epoch_replies = snap.stale_epoch_replies();
  report.messages_sent = snap.messages_sent();
  return report;
}

}  // namespace asnap::chaos
