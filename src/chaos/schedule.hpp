// Declarative, seeded chaos schedules.
//
// A Schedule is a time-ordered list of fault actions the orchestrator
// (orchestrator.hpp) injects into a running cluster: crash/recover a node,
// partition/heal the network, swap the lossy-network FaultPlan (ramps).
// Schedules are DATA — a scenario is reproducible from (profile, seed)
// alone, and hand-written schedules express targeted regressions (e.g. the
// partition that the negative breaker test needs).
//
// random_schedule() generates one from a ChaosProfile under two safety
// rails that keep the LIVENESS claim under test honest:
//   * at most floor((n-1)/2) nodes are scheduled down at any instant, so a
//     majority always exists for survivors (the orchestrator additionally
//     refuses an injection that would break majority at runtime — the
//     supervisor may not have caught up with the schedule's assumptions);
//   * every kCrash is paired with a fallback kRecover at outage end. The
//     self-healing supervisor normally restarts the node much earlier; the
//     fallback rides on recover()'s double-recover no-op and only matters
//     when self-healing is disabled or wedged.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "net/fault.hpp"

namespace asnap::chaos {

enum class ActionKind : std::uint8_t {
  kCrash = 0,     ///< fail-stop `node`
  kRecover = 1,   ///< restart `node` (no-op if already live)
  kPartition = 2, ///< split the cluster into `groups`
  kHeal = 3,      ///< reconnect all partition groups
  kSetFaultPlan = 4,  ///< install `plan` (loss/dup/delay ramp step)
};

struct Action {
  std::chrono::microseconds at{0};  ///< offset from run start
  ActionKind kind = ActionKind::kCrash;
  net::NodeId node = 0;                         ///< kCrash / kRecover
  std::vector<std::vector<net::NodeId>> groups; ///< kPartition
  net::FaultPlan plan;                          ///< kSetFaultPlan
};

struct Schedule {
  std::vector<Action> actions;  ///< sorted by `at`
};

/// Tunable shape of a random schedule. Rates are expected events per
/// second of run duration; each crash keeps its node down for a uniform
/// outage in [min_outage, max_outage] (the supervisor usually restarts it
/// after its own restart_delay, whichever comes first), and each partition
/// isolates a random minority for a uniform [min_partition, max_partition].
struct ChaosProfile {
  std::chrono::microseconds duration{std::chrono::seconds(2)};
  double crash_rate_hz = 2.0;
  std::chrono::microseconds min_outage{std::chrono::milliseconds(20)};
  std::chrono::microseconds max_outage{std::chrono::milliseconds(120)};
  double partition_rate_hz = 0.5;
  std::chrono::microseconds min_partition{std::chrono::milliseconds(20)};
  std::chrono::microseconds max_partition{std::chrono::milliseconds(80)};
  /// Steady-state lossy-network plan, installed at t=0 — or ramped to it
  /// in loss_ramp_steps equal increments of drop_prob across the first
  /// half of the run when loss_ramp_steps > 0.
  net::FaultPlan plan;
  std::uint32_t loss_ramp_steps = 0;
};

/// Deterministic schedule from (nodes, profile, seed).
Schedule random_schedule(std::size_t nodes, const ChaosProfile& profile,
                         std::uint64_t seed);

}  // namespace asnap::chaos
