// Concurrent timestamp object from atomic snapshots — the paper's
// "concurrent time-stamp systems [DS89]" motivation.
//
// label(): scan all published labels, publish max+1, return it.
// The snapshot's atomicity gives the timestamp system its ordering
// property: if label() L1 completes before label() L2 begins, then
// L2's label is strictly greater (L2's scan sees L1's published label).
// Concurrent calls may receive equal labels; (label, pid) is a total order.
//
// Labels here are unbounded integers; the paper's open-problem discussion
// (and [DS89]) concerns making them bounded — see DESIGN.md future work.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "core/bounded_sw_snapshot.hpp"

namespace asnap::apps {

class TimestampSystem {
 public:
  struct Stamp {
    std::uint64_t label = 0;
    ProcessId pid = kNoProcess;

    bool operator<(const Stamp& rhs) const {
      return label != rhs.label ? label < rhs.label : pid < rhs.pid;
    }
    bool operator==(const Stamp&) const = default;
  };

  explicit TimestampSystem(std::size_t n) : snap_(n, 0) {}

  std::size_t size() const { return snap_.size(); }

  /// Acquire a new timestamp: greater than every timestamp whose
  /// acquisition completed before this call began.
  Stamp label(ProcessId i) {
    const std::vector<std::uint64_t> view = snap_.scan(i);
    const std::uint64_t next =
        1 + *std::max_element(view.begin(), view.end());
    snap_.update(i, next);
    return Stamp{next, i};
  }

  /// The latest label this process has published (0 if none).
  Stamp current(ProcessId i) {
    return Stamp{snap_.scan(i)[i], i};
  }

 private:
  core::BoundedSwSnapshot<std::uint64_t> snap_;
};

}  // namespace asnap::apps
