// Adopt-commit object built from two atomic snapshots.
//
// The safety core of snapshot-based randomized consensus (the paper's
// motivating application family [A88, AH89, ADS89, A90]). propose(v) returns
// either (commit, v') or (adopt, v') with the guarantees:
//
//   * Agreement-on-commit: if any process commits v, every propose returns
//     value v (committed or adopted).
//   * Convergence: if all proposals are equal, everyone commits.
//   * Validity: the returned value is some process's proposal.
//
// Protocol (two snapshot phases):
//   Phase A: write your proposal to your word; scan. If every written word
//            equals your value, you are "unanimous".
//   Phase B: write (your value, unanimous?); scan. Commit iff every written
//            mark is unanimous with your value; else adopt the value of any
//            unanimous mark (at most one distinct such value can exist —
//            the classic two-scan argument); else keep your own.
//
// The atomicity of the scans is what makes the "at most one unanimous
// value" argument go through — precisely the paper's pitch that snapshots
// remove non-interference reasoning from algorithm proofs.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/config.hpp"
#include "core/bounded_sw_snapshot.hpp"

namespace asnap::apps {

class AdoptCommit {
 public:
  using Value = std::uint64_t;

  enum class Verdict {
    kCommit,  ///< value is decided; everyone else will at least adopt it
    kAdopt,   ///< some process was unanimous on value: chase it, no coin
    kNone,    ///< genuine conflict, nobody unanimous: caller may randomize
  };

  struct Outcome {
    Verdict verdict = Verdict::kNone;
    Value value = 0;
  };

  explicit AdoptCommit(std::size_t n)
      : phase_a_(n, SlotA{}), phase_b_(n, SlotB{}) {}

  std::size_t size() const { return phase_a_.size(); }

  Outcome propose(ProcessId i, Value v) {
    // Phase A: publish the proposal, scan, check unanimity.
    phase_a_.update(i, SlotA{true, v});
    const std::vector<SlotA> seen_a = phase_a_.scan(i);
    bool unanimous = true;
    for (const SlotA& slot : seen_a) {
      if (slot.set && slot.value != v) {
        unanimous = false;
        break;
      }
    }

    // Phase B: publish (value, unanimity), scan, decide.
    phase_b_.update(i, SlotB{true, unanimous, v});
    const std::vector<SlotB> seen_b = phase_b_.scan(i);

    bool all_marks_agree_with_mine = unanimous;
    std::optional<Value> someone_unanimous;
    for (const SlotB& slot : seen_b) {
      if (!slot.set) continue;
      if (!slot.unanimous || slot.value != v) all_marks_agree_with_mine = false;
      if (slot.unanimous) {
        ASNAP_ASSERT_MSG(
            !someone_unanimous.has_value() || *someone_unanimous == slot.value,
            "two distinct unanimous values — snapshot atomicity violated");
        someone_unanimous = slot.value;
      }
    }
    if (all_marks_agree_with_mine) return Outcome{Verdict::kCommit, v};
    if (someone_unanimous.has_value()) {
      // Crucial: reported as kAdopt even when *someone_unanimous == v, so a
      // caller never randomizes away from a value that may have committed.
      return Outcome{Verdict::kAdopt, *someone_unanimous};
    }
    return Outcome{Verdict::kNone, v};
  }

 private:
  struct SlotA {
    bool set = false;
    Value value = 0;
  };
  struct SlotB {
    bool set = false;
    bool unanimous = false;
    Value value = 0;
  };

  core::BoundedSwSnapshot<SlotA> phase_a_;
  core::BoundedSwSnapshot<SlotB> phase_b_;
};

}  // namespace asnap::apps
