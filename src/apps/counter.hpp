// Wait-free linearizable counter — the simplest of the paper's motivating
// applications ("wait-free implementation of data structures [AH90]").
//
// Each process accumulates its own contribution in its snapshot word; a read
// scans and sums. Because the scan is atomic, the counter is linearizable
// with no locks and no read-modify-write primitives — a non-atomic collect
// of per-process subtotals would NOT be a linearizable counter.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/config.hpp"
#include "core/bounded_sw_snapshot.hpp"

namespace asnap::apps {

class WaitFreeCounter {
 public:
  explicit WaitFreeCounter(std::size_t n) : snap_(n, 0), local_(n) {}

  std::size_t size() const { return snap_.size(); }

  /// Add `delta` to this process's contribution (single-writer word).
  void add(ProcessId i, std::int64_t delta) {
    local_[i].subtotal += delta;
    snap_.update(i, local_[i].subtotal);
  }

  /// Linearizable read of the global total.
  std::int64_t read(ProcessId i) {
    const std::vector<std::int64_t> view = snap_.scan(i);
    return std::accumulate(view.begin(), view.end(), std::int64_t{0});
  }

 private:
  struct alignas(kCacheLine) PerProcess {
    std::int64_t subtotal = 0;  ///< touched only by the owning process
  };

  core::BoundedSwSnapshot<std::int64_t> snap_;
  std::vector<PerProcess> local_;
};

}  // namespace asnap::apps
