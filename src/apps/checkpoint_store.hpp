// Instantaneously checkpointable shared store — Section 6's headline
// application of the multi-writer snapshot: "this provided the first
// polynomial construction of a shared memory object that can be
// instantaneously checkpointed."
//
// A fixed array of m cells, readable and writable by any of n processes
// (threads), plus checkpoint(): an atomic image of ALL cells taken while
// writers keep writing, wait-free. Version counters let a consumer diff two
// checkpoints cheaply.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/config.hpp"
#include "core/bounded_mw_snapshot.hpp"

namespace asnap::apps {

template <typename V>
class CheckpointStore {
 public:
  struct Cell {
    V value{};
    std::uint64_t version = 0;  ///< bumps on every put to this cell
    ProcessId last_writer = kNoProcess;
  };

  /// A consistent instantaneous image of the store.
  struct Checkpoint {
    std::vector<Cell> cells;

    /// Cells whose (version, last_writer) differs from `base` — a cheap
    /// incremental diff. Note: version numbers are maintained with a
    /// scan-then-update (registers cannot do atomic RMW), so two concurrent
    /// puts to one cell may produce equal versions from different writers;
    /// comparing the writer id as well disambiguates that case.
    std::vector<std::size_t> changed_since(const Checkpoint& base) const {
      ASNAP_ASSERT(cells.size() == base.cells.size());
      std::vector<std::size_t> changed;
      for (std::size_t k = 0; k < cells.size(); ++k) {
        if (cells[k].version != base.cells[k].version ||
            cells[k].last_writer != base.cells[k].last_writer) {
          changed.push_back(k);
        }
      }
      return changed;
    }
  };

  CheckpointStore(std::size_t n, std::size_t cells, const V& init)
      : snap_(n, cells, Cell{init, 0, kNoProcess}) {}

  std::size_t cells() const { return snap_.words(); }
  std::size_t size() const { return snap_.size(); }

  /// Write cell k. Wait-free; any process may write any cell.
  void put(ProcessId i, std::size_t k, V value) {
    // The version must grow monotonically per cell across ALL writers; a
    // scan gives the current version atomically with everything else.
    const std::vector<Cell> view = snap_.scan(i);
    snap_.update(i, k, Cell{std::move(value), view[k].version + 1, i});
  }

  /// Read one cell (consistent with a full scan).
  Cell get(ProcessId i, std::size_t k) {
    ASNAP_ASSERT(k < cells());
    return snap_.scan(i)[k];
  }

  /// Take an instantaneous checkpoint, concurrently with writers.
  Checkpoint checkpoint(ProcessId i) { return Checkpoint{snap_.scan(i)}; }

 private:
  core::BoundedMwSnapshot<Cell> snap_;
};

}  // namespace asnap::apps
