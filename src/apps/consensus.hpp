// Randomized wait-free binary consensus from atomic snapshots — the
// application the paper cites most prominently ([A88, AH89, ADS89, A90]).
//
// Structure: a sequence of adopt-commit objects (rounds). In round r every
// undecided process proposes its preference:
//   * commit  -> decide that value (every other process will adopt it in
//                round r and commit it by round r+1 — agreement follows
//                from the adopt-commit guarantees alone);
//   * adopt   -> take the adopted value into round r+1 (no coin: someone
//                was unanimous, chase their value);
//   * neither -> flip a fair local coin for round r+1.
//
// Deterministic wait-free consensus from registers is impossible (FLP/[H88]
// in the shared-memory setting); local coins give termination with
// probability 1 against an oblivious adversary: once every undecided
// process flips the same side in one round — probability >= 2^-n per round —
// unanimity commits within two more rounds.
//
// Safety (agreement + validity) is deterministic and unconditional; only
// termination time is probabilistic. The round cap exists so a test failure
// is an error, not a hang: P(exceeding R rounds) <= (1 - 2^-n)^(R/2).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/adopt_commit.hpp"
#include "common/assert.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"

namespace asnap::apps {

class SnapshotConsensus {
 public:
  SnapshotConsensus(std::size_t n, std::size_t max_rounds = 512)
      : n_(n) {
    rounds_.reserve(max_rounds);
    for (std::size_t r = 0; r < max_rounds; ++r) {
      rounds_.push_back(std::make_unique<AdoptCommit>(n));
    }
  }

  std::size_t size() const { return n_; }

  struct Result {
    bool value = false;
    std::size_t rounds_used = 0;
  };

  /// Decide a boolean. `rng` must be this process's private generator.
  Result decide(ProcessId i, bool proposal, Rng& rng) {
    bool preference = proposal;
    for (std::size_t r = 0; r < rounds_.size(); ++r) {
      const AdoptCommit::Outcome outcome =
          rounds_[r]->propose(i, preference ? 1 : 0);
      switch (outcome.verdict) {
        case AdoptCommit::Verdict::kCommit:
          return Result{outcome.value != 0, r + 1};
        case AdoptCommit::Verdict::kAdopt:
          // Someone was unanimous on this value; it may already be
          // committed — chase it, never randomize here.
          preference = outcome.value != 0;
          break;
        case AdoptCommit::Verdict::kNone:
          preference = rng.chance(0.5);  // genuine conflict: flip the coin
          break;
      }
    }
    ASNAP_ASSERT_MSG(false,
                     "consensus exceeded the round cap (probability ~0; "
                     "indicates a protocol bug)");
    return Result{};
  }

 private:
  std::size_t n_;
  std::vector<std::unique_ptr<AdoptCommit>> rounds_;
};

}  // namespace asnap::apps
