// A4 — multi-version pointer-swap snapshot (not from the paper; the
// atomsnap/RCU lineage, SNIPPETS.md Snippet 3, grafted onto the paper's
// single-writer interface).
//
// Where A1–A3 make a scanner *collect* the n registers until interference
// subsides, A4 inverts the work: every update builds the next whole-array
// version off to the side (read-copy-update over mvcc::VersionGate) and
// installs it with one CAS; every scan acquires the current version with
// one fetch_add. Scans are wait-free and allocation-free on the leased
// path (scan_view), O(n) only to copy out; updates are lock-free among
// themselves (a failed conditional publish retries from the new current)
// and are never blocked by scans.
//
// Linearization (full argument DESIGN.md §14): versions form a single
// total order — each successful CAS displaces exactly the version the
// update copied from, so version k+1 differs from version k by one word.
// An update linearizes at its successful CAS; a scan linearizes at its
// fetch_add, returning exactly version k's array: the state after a prefix
// of the update order. Views are therefore trivially comparable (ordered
// by epoch), which is the paper's Lemma "scans are totally ordered" for
// free — the whole double-collect machinery is traded for one allocation
// plus O(n) copy per update and retired versions awaiting reclamation.
//
// Well-formedness: word i is written only under process id i, and at most
// one operation runs under each id at a time (asserted per id, as in
// A1–A3). scan_view() is exempt — the leased path is safe from any thread
// with no discipline at all.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "common/config.hpp"
#include "core/snapshot_types.hpp"
#include "mvcc/version_gate.hpp"
#include "trace/event.hpp"

namespace asnap::core {

template <typename T>
class MvccSnapshot {
 public:
  /// n words, all `init`. `trace_id` is the pid of this gate's kMvcc*
  /// events (default 1; 0 names the svc scan cache's gate).
  explicit MvccSnapshot(std::size_t n, T init = T{}, std::uint32_t trace_id = 1)
      : n_(n),
        gate_(std::vector<T>(n, std::move(init)), trace_id),
        wf_(std::make_unique<WellFormednessFlag[]>(n)),
        stats_(std::make_unique<ScanStats[]>(n)) {
    ASNAP_ASSERT(n > 0);
  }

  std::size_t size() const { return n_; }

  /// UpdateRequest_i(v): read-copy-update of the version array. Lock-free;
  /// retries only against other writers (never against scans).
  void update(ProcessId i, T v) {
    ASNAP_ASSERT(i < n_);
    WellFormednessGuard wf(wf_[i]);
    ASNAP_TRACE_EVENT(trace::EventKind::kUpdateBegin, i, i);
    gate_.update_with([&](std::vector<T>& next) { next[i] = v; });
    ++stats_[i].updates;
    ASNAP_TRACE_EVENT(trace::EventKind::kUpdateEnd, i, i);
  }

  /// ScanRequest_i: one fetch_add acquires a whole consistent version;
  /// the copy-out is the only O(n) work.
  std::vector<T> scan(ProcessId i) {
    ASNAP_ASSERT(i < n_);
    WellFormednessGuard wf(wf_[i]);
    ASNAP_TRACE_EVENT(trace::EventKind::kScanBegin, i, trace::kAlgoMvccGate,
                      n_);
    auto g = gate_.acquire();
    std::vector<T> out = *g;
    ++stats_[i].scans;
    ASNAP_TRACE_EVENT(trace::EventKind::kScanEnd, i, /*double collects=*/0,
                      /*borrowed=*/0);
    return out;
  }

  /// Zero-copy leased scan: the returned guard lends the current version's
  /// array directly (valid for the guard's lifetime). This is the
  /// tens-of-ns path the E15-mvcc sweep measures.
  typename mvcc::VersionGate<std::vector<T>>::ReadGuard scan_view() {
    return gate_.acquire();
  }

  /// Version epoch of the current array (1 = all-initial). Monotone;
  /// advances exactly once per completed update.
  std::uint64_t version_epoch() const { return gate_.epoch(); }

  const ScanStats& stats(ProcessId i) const {
    ASNAP_ASSERT(i < n_);
    return stats_[i];
  }

  mvcc::GateStats gate_stats() const { return gate_.stats(); }

  /// Quiescent-point reclamation passthrough (tests / shutdown).
  std::size_t reclaim() { return gate_.reclaim(); }

 private:
  std::size_t n_;
  mvcc::VersionGate<std::vector<T>> gate_;
  std::unique_ptr<WellFormednessFlag[]> wf_;
  std::unique_ptr<ScanStats[]> stats_;
};

static_assert(SingleWriterSnapshot<MvccSnapshot<int>, int>);

}  // namespace asnap::core
