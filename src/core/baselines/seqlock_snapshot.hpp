// Sequence-lock baseline: optimistic scans over a version counter.
//
// Writers serialize through a mutex and bump the version to odd/even around
// the word store; scanners copy all words and retry if the version moved.
// Scans are wait-free *only in the absence of updates*: a steady stream of
// updates can starve a scanner forever, which is precisely the obstruction
// the paper's double-collect-with-borrowing removes. E10 uses this baseline
// to show where the wait-free algorithms' guarantees start paying rent.
//
// The payload must fit in a lock-free std::atomic so the optimistic reads
// are race-free under the C++ memory model.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

#include "common/assert.hpp"
#include "common/backoff.hpp"
#include "common/config.hpp"
#include "common/instrumentation.hpp"

namespace asnap::core {

template <typename T>
class SeqlockSnapshot {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::atomic<T>::is_always_lock_free,
                "SeqlockSnapshot requires a lock-free payload type");

 public:
  SeqlockSnapshot(std::size_t n, std::size_t m, const T& init)
      : n_(n), words_(m) {
    for (auto& w : words_) w = std::make_unique<std::atomic<T>>(init);
  }

  SeqlockSnapshot(std::size_t n, const T& init) : SeqlockSnapshot(n, n, init) {}

  std::size_t size() const { return n_; }
  std::size_t words() const { return words_.size(); }

  void update(ProcessId i, std::size_t k, T value) {
    ASNAP_ASSERT(i < n_ && k < words_.size());
    std::lock_guard lock(writer_mu_);
    step_point(StepKind::kRegisterWrite);
    version_.fetch_add(1, std::memory_order_relaxed);  // now odd
    std::atomic_thread_fence(std::memory_order_release);
    words_[k]->store(value, std::memory_order_relaxed);
    version_.fetch_add(1, std::memory_order_release);  // even again
  }

  void update(ProcessId i, T value) {
    update(i, static_cast<std::size_t>(i), std::move(value));
  }

  std::vector<T> scan(ProcessId i) {
    ASNAP_ASSERT(i < n_);
    std::vector<T> out(words_.size(), T{});
    Backoff backoff;
    for (;;) {
      const std::uint64_t v1 = version_.load(std::memory_order_acquire);
      if ((v1 & 1) == 0) {
        for (std::size_t k = 0; k < words_.size(); ++k) {
          step_point(StepKind::kRegisterRead);
          out[k] = words_[k]->load(std::memory_order_relaxed);
        }
        std::atomic_thread_fence(std::memory_order_acquire);
        const std::uint64_t v2 = version_.load(std::memory_order_relaxed);
        if (v1 == v2) return out;  // no writer moved: consistent copy
      }
      backoff.pause();
    }
  }

  /// Bounded-retry scan for starvation experiments: nullopt-like signal via
  /// the bool. Returns false if max_attempts optimistic copies all failed.
  bool try_scan(ProcessId i, std::size_t max_attempts, std::vector<T>& out) {
    ASNAP_ASSERT(i < n_);
    out.assign(words_.size(), T{});
    for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
      const std::uint64_t v1 = version_.load(std::memory_order_acquire);
      if ((v1 & 1) != 0) continue;
      for (std::size_t k = 0; k < words_.size(); ++k) {
        step_point(StepKind::kRegisterRead);
        out[k] = words_[k]->load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (v1 == version_.load(std::memory_order_relaxed)) return true;
    }
    return false;
  }

 private:
  std::size_t n_;
  std::mutex writer_mu_;
  std::atomic<std::uint64_t> version_{0};
  std::vector<std::unique_ptr<std::atomic<T>>> words_;
};

}  // namespace asnap::core
