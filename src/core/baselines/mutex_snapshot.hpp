// Coarse-grained lock baseline: the "obvious" snapshot object a systems
// programmer would write. Linearizable and simple, but blocking: a stalled
// lock holder stalls everyone — the exact failure mode wait-freedom rules
// out. Used by E10 throughput/latency benchmarks as the practical yardstick.
#pragma once

#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/config.hpp"

namespace asnap::core {

template <typename T>
class MutexSnapshot {
 public:
  /// Multi-writer form: n processes, m words.
  MutexSnapshot(std::size_t n, std::size_t m, const T& init)
      : n_(n), words_(m, init) {}

  /// Single-writer convenience form: m == n.
  MutexSnapshot(std::size_t n, const T& init) : MutexSnapshot(n, n, init) {}

  std::size_t size() const { return n_; }
  std::size_t words() const { return words_.size(); }

  void update(ProcessId i, std::size_t k, T value) {
    ASNAP_ASSERT(i < n_ && k < words_.size());
    std::lock_guard lock(mu_);
    words_[k] = std::move(value);
  }

  /// Single-writer update: process i writes word i.
  void update(ProcessId i, T value) {
    update(i, static_cast<std::size_t>(i), std::move(value));
  }

  std::vector<T> scan(ProcessId i) {
    ASNAP_ASSERT(i < n_);
    std::lock_guard lock(mu_);
    return words_;
  }

 private:
  std::size_t n_;
  mutable std::mutex mu_;
  std::vector<T> words_;
};

}  // namespace asnap::core
