// Observation-1-only baseline: the simple unbounded algorithm the paper
// presents first and rejects ("this algorithm is not wait-free", Section 3).
//
// Updates just write (value, seq+1) — no embedded scan, so updates are O(1).
// Scans repeat double collects until two agree. Lock-free (some operation
// always completes) but NOT wait-free: concurrent updaters can starve a
// scanner forever. This is the ablation that isolates what Observation 2
// (view borrowing) buys: compare its bounded try_scan failure rate against
// the paper algorithms' guaranteed termination (benches E6/E10).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/config.hpp"
#include "core/snapshot_types.hpp"
#include "reg/register_array.hpp"

namespace asnap::core {

template <typename T>
class DoubleCollectSnapshot {
 public:
  struct Record {
    T value;
    std::uint64_t seq = 0;
  };

  DoubleCollectSnapshot(std::size_t n, const T& init)
      : regs_(n, Record{init, 0}), per_process_(n) {}

  std::size_t size() const { return regs_.size(); }

  /// O(1) update: one atomic write, no embedded scan.
  void update(ProcessId i, T value) {
    ASNAP_ASSERT(i < size());
    PerProcess& me = per_process_[i];
    ++me.seq;
    regs_.write(i, Record{std::move(value), me.seq});
  }

  /// Unbounded scan: retries until a successful double collect.
  std::vector<T> scan(ProcessId i) {
    std::vector<T> out;
    while (!try_scan(i, static_cast<std::size_t>(-1), out)) {
    }
    return out;
  }

  /// Bounded-retry scan; returns false if every double collect failed.
  /// Used to measure starvation under contention.
  bool try_scan(ProcessId i, std::size_t max_double_collects,
                std::vector<T>& out) {
    ASNAP_ASSERT(i < size());
    const std::size_t n = size();
    std::vector<Record> a(n);
    std::vector<Record> b(n);
    for (std::size_t attempt = 0; attempt < max_double_collects; ++attempt) {
      collect(i, a);
      collect(i, b);
      bool identical = true;
      for (std::size_t j = 0; j < n; ++j) {
        if (a[j].seq != b[j].seq) {
          identical = false;
          break;
        }
      }
      if (identical) {
        out.clear();
        out.reserve(n);
        for (std::size_t j = 0; j < n; ++j) out.push_back(b[j].value);
        return true;
      }
    }
    return false;
  }

 private:
  struct alignas(kCacheLine) PerProcess {
    std::uint64_t seq = 0;
  };

  void collect(ProcessId reader, std::vector<Record>& out) {
    const std::size_t n = size();
    out.clear();
    out.reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      out.push_back(regs_.read(static_cast<ProcessId>(j), reader));
    }
  }

  reg::SharedMemoryRegisterArray<Record> regs_;
  std::vector<PerProcess> per_process_;
};

}  // namespace asnap::core
