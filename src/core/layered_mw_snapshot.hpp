// Multi-writer snapshot LAYERED ON a single-writer snapshot — Anderson's
// composition direction ([A89b]: "uses single-writer atomic snapshots to
// construct multi-writer atomic snapshots"), here with unbounded tags.
//
// Construction: process i's single-writer word holds i's latest write to
// every MW word: an array entry[k] = (tag, value), where tag = (seq, pid)
// totally orders all writes to word k (seq is one more than the largest
// seq for k visible in a scan, as in the Vitanyi-Awerbuch register).
//
//   mw_update_i(k, v):  view := sw_scan();             // one SW scan
//                       tag := (max seq for k in view) + 1, i
//                       entries_i[k] := (tag, v); sw_update_i(entries_i)
//   mw_scan_i():        view := sw_scan();             // one SW scan
//                       word k := value of max-tag entry for k in view
//
// Correctness sketch: the single SW scan is atomic, so a mw_scan's view is
// a consistent cut of all announcements; per-word max tags are monotone
// across cuts, and a write is visible to every scan that starts after it
// completes. Unlike the register-level VA construction, NO write-back is
// needed — the atomicity of the underlying scan already prevents new/old
// inversions between readers.
//
// Why this matters for the paper's Section 6: composed out of the bounded
// Figure 3 snapshot, this gives a multi-writer snapshot at O(1) SW-snapshot
// operations = O(n^2) SWMR steps per operation — apparently beating the
// O(n^3)/O(n^4) compound bounds discussed there. The catch is exactly the
// paper's closing open problem: the tags are UNBOUNDED. Boundedness is
// what the Figure 4 algorithm and Anderson's bounded composition pay the
// extra factor(s) of n for. bench_compound_cost reports this construction
// alongside the others so the trade is visible in measured exponents.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/config.hpp"
#include "core/bounded_sw_snapshot.hpp"
#include "core/snapshot_types.hpp"

namespace asnap::core {

template <typename T, template <class> class SwSnapT = BoundedSwSnapshot>
class LayeredMwSnapshot {
 public:
  LayeredMwSnapshot(std::size_t n, std::size_t m, const T& init)
      : n_(n),
        m_(m),
        sw_(n, initial_entries(m, init)),
        local_entries_(n, initial_entries(m, init)),
        stats_(n) {}

  std::size_t size() const { return n_; }
  std::size_t words() const { return m_; }

  void update(ProcessId i, std::size_t k, T value) {
    ASNAP_ASSERT(i < n_ && k < m_);
    // One SW scan to pick a dominating tag for word k.
    const std::vector<Entries> view = sw_.scan(i);
    std::uint64_t max_seq = 0;
    for (const Entries& entries : view) {
      max_seq = std::max(max_seq, entries[k].seq);
    }
    Entries& mine = local_entries_[i];
    mine[k] = Entry{max_seq + 1, i, std::move(value)};
    sw_.update(i, mine);
    ++stats_[i].updates;
  }

  std::vector<T> scan(ProcessId i) {
    ASNAP_ASSERT(i < n_);
    const std::vector<Entries> view = sw_.scan(i);
    std::vector<T> out;
    out.reserve(m_);
    for (std::size_t k = 0; k < m_; ++k) {
      const Entry* best = &view[0][k];
      for (std::size_t j = 1; j < n_; ++j) {
        const Entry& candidate = view[j][k];
        if (best->seq < candidate.seq ||
            (best->seq == candidate.seq && best->writer < candidate.writer)) {
          best = &candidate;
        }
      }
      out.push_back(best->value);
    }
    ++stats_[i].scans;
    return out;
  }

  const ScanStats& stats(ProcessId i) const { return stats_[i]; }

  /// Statistics of the underlying single-writer snapshot (per process).
  const ScanStats& substrate_stats(ProcessId i) const { return sw_.stats(i); }

 private:
  struct Entry {
    std::uint64_t seq = 0;        ///< unbounded per-word tag
    ProcessId writer = 0;         ///< tie-break
    T value{};
  };
  using Entries = std::vector<Entry>;  ///< one process's latest write per word

  static Entries initial_entries(std::size_t m, const T& init) {
    return Entries(m, Entry{0, 0, init});
  }

  std::size_t n_;
  std::size_t m_;
  SwSnapT<Entries> sw_;
  std::vector<Entries> local_entries_;  ///< local_entries_[i] owned by P_i
  std::vector<ScanStats> stats_;        ///< stats_[i] owned by P_i
};

}  // namespace asnap::core
