// Figure 2 of the paper: the unbounded single-writer atomic snapshot.
//
// Shared state: one SWMR register r_i per process, holding the triple
// (value, seq, view) written in a single atomic write.
//
//   procedure scan_i                         procedure update_i(value)
//     moved[j] := 0 for all j                  view := scan_i   /* embedded */
//     loop:                                    r_i := (value, seq_i + 1, view)
//       a := collect; b := collect
//       if forall j: seq(a_j) = seq(b_j):  return values(b)   /* Obs. 1 */
//       for j with seq(a_j) != seq(b_j):
//         if moved[j] = 1: return view(b_j)                   /* Obs. 2 */
//         moved[j] := 1
//
// Wait-freedom (Lemma 3.4): by pigeonhole, within n+1 double collects either
// one is successful or some process was observed moving twice, so a scan
// performs at most (n+1) * 2n + O(n) primitive register operations and an
// update at most that plus one write — O(n^2).
//
// The register array is a template parameter so the identical algorithm runs
// over in-memory registers (reg::SharedMemoryRegisterArray) or over the
// ABD message-passing emulation (abd::AbdRegisterArray), realizing the
// Section 6 remark about message-passing snapshots.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/config.hpp"
#include "core/snapshot_types.hpp"
#include "reg/register_array.hpp"
#include "trace/event.hpp"

namespace asnap::core {

/// Contents of register r_i in Figure 2. Written in one atomic write.
template <typename T>
struct UnboundedRecord {
  T value;                 ///< last value updated by the owner
  std::uint64_t seq = 0;   ///< owner's update count (unbounded!)
  std::vector<T> view;     ///< snapshot embedded in the writing update
};

template <typename T,
          template <class> class ArrayT = reg::SharedMemoryRegisterArray>
class UnboundedSwSnapshot {
 public:
  using Record = UnboundedRecord<T>;
  using Array = ArrayT<Record>;

  /// Initial register contents for n processes (exposed so external register
  /// providers, e.g. ABD, can be pre-initialized identically).
  static Record initial_record(std::size_t n, const T& init) {
    return Record{init, 0, std::vector<T>(n, init)};
  }

  /// Construct over a default-allocated in-memory register array.
  UnboundedSwSnapshot(std::size_t n, const T& init)
      : regs_(n, initial_record(n, init)), per_process_(n) {}

  /// Construct over an externally provided register array of n registers,
  /// each already holding initial_record(n, init).
  explicit UnboundedSwSnapshot(Array regs)
      : regs_(std::move(regs)), per_process_(regs_.size()) {}

  std::size_t size() const { return regs_.size(); }

  /// Figure 2, procedure update_i.
  void update(ProcessId i, T value) {
    ASNAP_ASSERT(i < size());
    WellFormednessGuard guard(per_process_[i].busy);
    ASNAP_TRACE_EVENT(trace::EventKind::kUpdateBegin, i,
                      per_process_[i].seq + 1);
    std::vector<T> view = scan_impl(i);  // embedded scan
    PerProcess& me = per_process_[i];
    ++me.seq;
    regs_.write(i, Record{std::move(value), me.seq, std::move(view)});
    ++me.stats.updates;
    ASNAP_TRACE_EVENT(trace::EventKind::kUpdateEnd, i, me.seq);
  }

  /// Figure 2, procedure scan_i.
  std::vector<T> scan(ProcessId i) {
    ASNAP_ASSERT(i < size());
    WellFormednessGuard guard(per_process_[i].busy);
    return scan_impl(i);
  }

  const ScanStats& stats(ProcessId i) const { return per_process_[i].stats; }

 private:
  struct alignas(kCacheLine) PerProcess {
    std::uint64_t seq = 0;  ///< local copy of seq_i, persists across updates
    ScanStats stats;
    WellFormednessFlag busy;
  };

  void collect(ProcessId reader, std::vector<Record>& out) {
    const std::size_t n = size();
    out.clear();
    out.reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      out.push_back(regs_.read(static_cast<ProcessId>(j), reader));
    }
  }

  std::vector<T> scan_impl(ProcessId i) {
    const std::size_t n = size();
    PerProcess& me = per_process_[i];
    std::vector<std::uint8_t> moved(n, 0);
    std::vector<Record> a;
    std::vector<Record> b;
    std::uint64_t attempts = 0;
    ASNAP_TRACE_EVENT(trace::EventKind::kScanBegin, i, trace::kAlgoUnboundedSw,
                      n);

    for (;;) {
      ASNAP_TRACE_EVENT(trace::EventKind::kCollectBegin, i, attempts);
      collect(i, a);
      ASNAP_TRACE_EVENT(trace::EventKind::kCollectEnd, i, attempts);
      ASNAP_TRACE_EVENT(trace::EventKind::kCollectBegin, i, attempts);
      collect(i, b);
      ASNAP_TRACE_EVENT(trace::EventKind::kCollectEnd, i, attempts);
      ++attempts;

      bool identical = true;
      for (std::size_t j = 0; j < n; ++j) {
        if (a[j].seq != b[j].seq) {
          identical = false;
          break;
        }
      }
      if (identical) {  // successful double collect (Observation 1)
        ASNAP_TRACE_EVENT(trace::EventKind::kDoubleCollectMatch, i, attempts);
        finish_scan(i, me, attempts, /*borrowed=*/false);
        std::vector<T> values;
        values.reserve(n);
        for (std::size_t j = 0; j < n; ++j) values.push_back(b[j].value);
        return values;
      }
      ASNAP_TRACE_EVENT(trace::EventKind::kDoubleCollectMismatch, i, attempts);

      for (std::size_t j = 0; j < n; ++j) {
        if (a[j].seq == b[j].seq) continue;
        if (moved[j] != 0) {  // P_j moved twice: borrow its view (Obs. 2)
          ASNAP_TRACE_EVENT(trace::EventKind::kViewBorrowed, i, j);
          finish_scan(i, me, attempts, /*borrowed=*/true);
          ASNAP_ASSERT(b[j].view.size() == n);
          return b[j].view;
        }
        ASNAP_TRACE_EVENT(trace::EventKind::kMovedDetected, i, j);
        moved[j] = 1;
      }
      // Wait-freedom invariant (Lemma 3.4): the pigeonhole bound.
      ASNAP_ASSERT_MSG(attempts <= n + 1,
                       "scan exceeded the n+1 double-collect bound");
    }
  }

  void finish_scan([[maybe_unused]] ProcessId i, PerProcess& me,
                   std::uint64_t attempts, bool borrowed) {
    ++me.stats.scans;
    me.stats.double_collects += attempts;
    if (attempts > me.stats.max_double_collects) {
      me.stats.max_double_collects = attempts;
    }
    if (borrowed) ++me.stats.borrowed_views;
    ASNAP_TRACE_EVENT(trace::EventKind::kScanEnd, i, attempts,
                      borrowed ? 1 : 0);
  }

  Array regs_;
  std::vector<PerProcess> per_process_;
};

}  // namespace asnap::core
