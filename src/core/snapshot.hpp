// Umbrella header: the public API of the atomic-snapshots library.
//
//   #include "core/snapshot.hpp"
//
//   asnap::core::BoundedSwSnapshot<int> snap(/*n=*/4, /*init=*/0);
//   snap.update(/*process=*/1, 42);
//   std::vector<int> view = snap.scan(/*process=*/0);  // atomic snapshot
//
// See README.md for the full tour and DESIGN.md for the paper mapping.
#pragma once

#include "core/baselines/double_collect_snapshot.hpp"
#include "core/baselines/mutex_snapshot.hpp"
#include "core/baselines/seqlock_snapshot.hpp"
#include "core/bounded_mw_snapshot.hpp"
#include "core/bounded_sw_snapshot.hpp"
#include "core/immediate_snapshot.hpp"
#include "core/layered_mw_snapshot.hpp"
#include "core/mvcc_snapshot.hpp"
#include "core/snapshot_types.hpp"
#include "core/unbounded_sw_snapshot.hpp"
