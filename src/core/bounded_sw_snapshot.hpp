// Figure 3 of the paper: the bounded single-writer atomic snapshot.
//
// The unbounded sequence numbers of Figure 2 are replaced by per-pair
// handshake bits plus a toggle bit:
//
//   * q_{i,j} — written by scanner P_i, read by updater P_j (its own
//     1-writer 1-reader atomic bit register, reg::HandshakeMatrix).
//   * p_{j,i} — written by updater P_j as a field of its register r_j
//     (so it changes atomically with the value, toggle and view).
//   * toggle(r_j) — flipped on every update so consecutive writes always
//     change the register contents.
//
//   procedure scan_i                          procedure update_j(value)
//     moved[*] := 0                             for i: f[i] := ¬q_{i,j}
//     loop:                                     view := scan_j   /* embedded */
//       for j: q_{i,j} := p_{j,i}(r_j)          r_j := (value, f,
//       a := collect; b := collect                      ¬toggle(r_j), view)
//       if forall j: p_{j,i}(a_j) = p_{j,i}(b_j) = q_{i,j}
//                    and toggle(a_j) = toggle(b_j):
//         return values(b)
//       for j where the bits disagree:
//         if moved[j] = 1: return view(b_j)
//         moved[j] := 1
//
// Lemma 4.1's argument hinges on the handshake sequence: if the bits match
// after the double collect, no update by P_j was serialized between the two
// collect reads, because an update writes p_{j,i} := ¬q_{i,j} using a value
// of q_{i,j} read BEFORE the scanner's handshake write.
//
// All register fields are bounded: the register carries |value| + n + 1 bits
// of protocol state regardless of run length (experiment E8).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/config.hpp"
#include "core/snapshot_types.hpp"
#include "reg/handshake.hpp"
#include "reg/register_array.hpp"
#include "trace/event.hpp"

namespace asnap::core {

/// Contents of register r_j in Figure 3. Written in one atomic write.
template <typename T>
struct BoundedRecord {
  T value;
  std::vector<std::uint8_t> p;  ///< handshake bits; p[i] is the paper's p_{j,i}
  bool toggle = false;
  std::vector<T> view;
};

template <typename T,
          template <class> class ArrayT = reg::SharedMemoryRegisterArray>
class BoundedSwSnapshot {
 public:
  using Record = BoundedRecord<T>;
  using Array = ArrayT<Record>;

  static Record initial_record(std::size_t n, const T& init) {
    return Record{init, std::vector<std::uint8_t>(n, 0), false,
                  std::vector<T>(n, init)};
  }

  BoundedSwSnapshot(std::size_t n, const T& init)
      : regs_(n, initial_record(n, init)), q_(n), per_process_(n) {}

  std::size_t size() const { return regs_.size(); }

  /// Figure 3, procedure update_i.
  void update(ProcessId i, T value) {
    ASNAP_ASSERT(i < size());
    WellFormednessGuard guard(per_process_[i].busy);
    const std::size_t n = size();
    ASNAP_TRACE_EVENT(trace::EventKind::kUpdateBegin, i);

    // Line 0: collect handshake values f[j] := ¬q_{j,i}.
    std::vector<std::uint8_t> f(n);
    for (std::size_t j = 0; j < n; ++j) {
      f[j] = q_.read(static_cast<ProcessId>(j), i) ? 0 : 1;
    }

    // Line 1: embedded scan.
    std::vector<T> view = scan_impl(i);

    // Line 2: single atomic write of (value, f, ¬toggle, view).
    PerProcess& me = per_process_[i];
    me.toggle = !me.toggle;
    ASNAP_TRACE_EVENT(trace::EventKind::kHandshakeToggle, i,
                      me.toggle ? 1 : 0);
    regs_.write(i, Record{std::move(value), std::move(f), me.toggle,
                          std::move(view)});
    ++me.stats.updates;
    ASNAP_TRACE_EVENT(trace::EventKind::kUpdateEnd, i);
  }

  /// Figure 3, procedure scan_i.
  std::vector<T> scan(ProcessId i) {
    ASNAP_ASSERT(i < size());
    WellFormednessGuard guard(per_process_[i].busy);
    return scan_impl(i);
  }

  const ScanStats& stats(ProcessId i) const { return per_process_[i].stats; }

 private:
  struct alignas(kCacheLine) PerProcess {
    bool toggle = false;  ///< local copy of toggle(r_i)
    ScanStats stats;
    WellFormednessFlag busy;
  };

  void collect(ProcessId reader, std::vector<Record>& out) {
    const std::size_t n = size();
    out.clear();
    out.reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      out.push_back(regs_.read(static_cast<ProcessId>(j), reader));
    }
  }

  std::vector<T> scan_impl(ProcessId i) {
    const std::size_t n = size();
    PerProcess& me = per_process_[i];
    std::vector<std::uint8_t> moved(n, 0);
    std::vector<std::uint8_t> q_local(n, 0);
    std::vector<Record> a;
    std::vector<Record> b;
    std::uint64_t attempts = 0;
    ASNAP_TRACE_EVENT(trace::EventKind::kScanBegin, i, trace::kAlgoBoundedSw,
                      n);

    for (;;) {
      // Line 0.5: handshake — q_{i,j} := p_{j,i}(r_j). Reading r_j is one
      // primitive read; writing the bit register q_{i,j} is one write.
      for (std::size_t j = 0; j < n; ++j) {
        const Record r_j = regs_.read(static_cast<ProcessId>(j), i);
        q_local[j] = r_j.p[i];
        q_.write(i, static_cast<ProcessId>(j), q_local[j] != 0);
      }

      ASNAP_TRACE_EVENT(trace::EventKind::kCollectBegin, i, attempts);
      collect(i, a);
      ASNAP_TRACE_EVENT(trace::EventKind::kCollectEnd, i, attempts);
      ASNAP_TRACE_EVENT(trace::EventKind::kCollectBegin, i, attempts);
      collect(i, b);
      ASNAP_TRACE_EVENT(trace::EventKind::kCollectEnd, i, attempts);
      ++attempts;

      // Line 3: nobody moved?
      bool clean = true;
      for (std::size_t j = 0; j < n; ++j) {
        if (a[j].p[i] != q_local[j] || b[j].p[i] != q_local[j] ||
            a[j].toggle != b[j].toggle) {
          clean = false;
          break;
        }
      }
      if (clean) {
        ASNAP_TRACE_EVENT(trace::EventKind::kDoubleCollectMatch, i, attempts);
        finish_scan(i, me, attempts, /*borrowed=*/false);
        std::vector<T> values;
        values.reserve(n);
        for (std::size_t j = 0; j < n; ++j) values.push_back(b[j].value);
        return values;
      }
      ASNAP_TRACE_EVENT(trace::EventKind::kDoubleCollectMismatch, i, attempts);

      // Lines 5-9: attribute movement; borrow a view on the second offense.
      for (std::size_t j = 0; j < n; ++j) {
        const bool moved_now = a[j].p[i] != q_local[j] ||
                               b[j].p[i] != q_local[j] ||
                               a[j].toggle != b[j].toggle;
        if (!moved_now) continue;
        if (moved[j] != 0) {
          ASNAP_TRACE_EVENT(trace::EventKind::kViewBorrowed, i, j);
          finish_scan(i, me, attempts, /*borrowed=*/true);
          ASNAP_ASSERT(b[j].view.size() == n);
          return b[j].view;
        }
        ASNAP_TRACE_EVENT(trace::EventKind::kMovedDetected, i, j);
        moved[j] = 1;
      }
      ASNAP_ASSERT_MSG(attempts <= n + 1,
                       "scan exceeded the n+1 double-collect bound");
    }
  }

  void finish_scan([[maybe_unused]] ProcessId i, PerProcess& me,
                   std::uint64_t attempts, bool borrowed) {
    ++me.stats.scans;
    me.stats.double_collects += attempts;
    if (attempts > me.stats.max_double_collects) {
      me.stats.max_double_collects = attempts;
    }
    if (borrowed) ++me.stats.borrowed_views;
    ASNAP_TRACE_EVENT(trace::EventKind::kScanEnd, i, attempts,
                      borrowed ? 1 : 0);
  }

  Array regs_;
  reg::HandshakeMatrix q_;
  std::vector<PerProcess> per_process_;
};

}  // namespace asnap::core
