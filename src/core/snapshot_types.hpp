// Shared vocabulary of the snapshot implementations: operation statistics,
// concepts, and per-process handles.
//
// API model (mirrors the paper's interface actions, Figure 1):
//   Single-writer snapshot object for n processes over value type T:
//     void update(ProcessId i, T v);            // UpdateRequest_i(v)
//     std::vector<T> scan(ProcessId i);         // ScanRequest_i
//   Multi-writer snapshot object for n processes and m words:
//     void update(ProcessId i, std::size_t k, T v);
//     std::vector<T> scan(ProcessId i);
//
// Each process id may have at most one operation in flight at a time (the
// paper's well-formedness condition); implementations assert this.
#pragma once

#include <atomic>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/config.hpp"

namespace asnap::core {

/// Per-process operation statistics, maintained by the paper algorithms.
/// Only the owning process writes them; reading them concurrently from
/// another thread is benign for benchmarking purposes (single-word fields).
struct ScanStats {
  std::uint64_t scans = 0;             ///< scans completed (incl. embedded)
  std::uint64_t updates = 0;           ///< updates completed
  std::uint64_t double_collects = 0;   ///< double collects executed
  std::uint64_t borrowed_views = 0;    ///< scans that returned a borrowed view
  std::uint64_t max_double_collects = 0;  ///< worst case over a single scan
};

/// Single-writer snapshot: word i written only by process i.
template <typename S, typename T>
concept SingleWriterSnapshot = requires(S s, const S cs, ProcessId i, T v) {
  { cs.size() } -> std::convertible_to<std::size_t>;
  s.update(i, std::move(v));
  { s.scan(i) } -> std::convertible_to<std::vector<T>>;
};

/// Multi-writer snapshot: any process may write any of the m words.
template <typename S, typename T>
concept MultiWriterSnapshot =
    requires(S s, const S cs, ProcessId i, std::size_t k, T v) {
      { cs.size() } -> std::convertible_to<std::size_t>;
      { cs.words() } -> std::convertible_to<std::size_t>;
      s.update(i, k, std::move(v));
      { s.scan(i) } -> std::convertible_to<std::vector<T>>;
    };

/// Detects concurrent operations issued under the same process id (a
/// violation of the paper's well-formedness assumption, i.e. user error).
/// Public operations arm it; embedded scans run under the already-armed
/// guard of the enclosing update.
class WellFormednessFlag {
 public:
  void enter() {
    const bool was_busy = busy_.exchange(true, std::memory_order_acquire);
    ASNAP_ASSERT_MSG(!was_busy,
                     "two concurrent operations under one process id");
  }
  void exit() { busy_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> busy_{false};
};

class WellFormednessGuard {
 public:
  explicit WellFormednessGuard(WellFormednessFlag& flag) : flag_(flag) {
    flag_.enter();
  }
  ~WellFormednessGuard() { flag_.exit(); }
  WellFormednessGuard(const WellFormednessGuard&) = delete;
  WellFormednessGuard& operator=(const WellFormednessGuard&) = delete;

 private:
  WellFormednessFlag& flag_;
};

/// Convenience view of a snapshot bound to one process id, so application
/// code reads like the paper's per-process pseudocode.
template <typename Snap>
class ProcessHandle {
 public:
  ProcessHandle(Snap& snap, ProcessId pid) : snap_(&snap), pid_(pid) {}

  ProcessId pid() const { return pid_; }

  auto scan() { return snap_->scan(pid_); }

  template <typename T>
  void update(T&& v)
    requires requires(Snap& s) { s.update(ProcessId{}, std::forward<T>(v)); }
  {
    snap_->update(pid_, std::forward<T>(v));
  }

  template <typename T>
  void update(std::size_t word, T&& v)
    requires requires(Snap& s) {
      s.update(ProcessId{}, std::size_t{}, std::forward<T>(v));
    }
  {
    snap_->update(pid_, word, std::forward<T>(v));
  }

 private:
  Snap* snap_;
  ProcessId pid_;
};

/// Adapts a multi-writer snapshot (with m == n) to the single-writer
/// interface: process i writes word i. Used to run the Figure 4 algorithm
/// through the single-writer exact linearizability checker.
template <typename MwSnap>
class SingleWriterAdapter {
 public:
  explicit SingleWriterAdapter(MwSnap& snap) : snap_(&snap) {
    ASNAP_ASSERT_MSG(snap.words() == snap.size(),
                     "SingleWriterAdapter requires m == n");
  }

  std::size_t size() const { return snap_->size(); }

  template <typename T>
  void update(ProcessId i, T&& v) {
    snap_->update(i, static_cast<std::size_t>(i), std::forward<T>(v));
  }

  auto scan(ProcessId i) { return snap_->scan(i); }

 private:
  MwSnap* snap_;
};

}  // namespace asnap::core
