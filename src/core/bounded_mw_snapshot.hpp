// Figure 4 of the paper: the bounded multi-writer atomic snapshot.
//
// Any of the n processes may update any of the m memory words. The words
// live in multi-writer multi-reader registers r_k = (value, id, toggle);
// the handshake bits and views are uncoupled from the value registers:
//
//   * p_{i,j}, q_{i,j} — 1-writer 1-reader handshake bit registers
//     (p written by updaters, q by scanners).
//   * view_i — a single-writer register per process, holding the m-word
//     snapshot produced by P_i's latest embedded scan.
//   * id(r_k), toggle(r_k) — make every write observable and attributable:
//     successive updates by P_i to word k write id = i and alternate P_i's
//     local toggle t_k.
//
//   procedure scan_i                        procedure update_j(k, value)
//     moved[*] := 0                           for i: p_{j,i} := ¬q_{i,j}
//     loop:                                   view_j := scan_j  /* embedded */
//       for j: q_{i,j} := p_{j,i}             t_k := ¬t_k       /* local */
//       a := collect(r_1..r_m)                r_k := (value, j, t_k)
//       b := collect(r_1..r_m)
//       h := collect(p_{j,i} : all j)
//       if forall j: q_{i,j} = h_j and forall k: id/toggle unchanged:
//         return values(b)
//       for j that moved (handshake, or a register change with id(b_k)=j):
//         if moved[j] = 2: return view_j      /* borrow on the THIRD move */
//         moved[j] := moved[j] + 1
//
// Because the handshake bits are not written atomically with r_k, one update
// can be observed twice (once via its handshake, once via its register
// write); hence a process must be seen moving THREE times before its view is
// borrowed (Lemma 5.2), and the pigeonhole bound becomes 2n+1 double
// collects.
//
// The MWMR register type is a template parameter: DirectMwmrRegister (native
// wide register) for normal use, or reg::VitanyiAwerbuchMwmr (built from
// SWMR registers) to satisfy Section 2's only-single-writer-registers
// restriction and to run the Section 6 compound-cost experiment (E7).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/config.hpp"
#include "core/snapshot_types.hpp"
#include "reg/big_register.hpp"
#include "reg/handshake.hpp"
#include "reg/mwmr_register.hpp"
#include "trace/event.hpp"

namespace asnap::core {

/// Contents of the multi-writer word register r_k in Figure 4.
template <typename T>
struct WordRecord {
  T value;
  ProcessId id = 0;     ///< who wrote this value
  bool toggle = false;  ///< writer's per-word toggle bit
};

template <typename T,
          template <class> class MwmrT = reg::DirectMwmrRegister>
class BoundedMwSnapshot {
 public:
  using Word = WordRecord<T>;
  using WordRegister = MwmrT<Word>;
  static_assert(reg::MwmrRegister<WordRegister, Word>);

  /// n processes, m memory words, all initialized to `init`.
  BoundedMwSnapshot(std::size_t n, std::size_t m, const T& init)
      : n_(n), m_(m), p_(n), q_(n), per_process_(n) {
    words_.reserve(m);
    for (std::size_t k = 0; k < m; ++k) {
      words_.push_back(
          std::make_unique<WordRegister>(n, Word{init, 0, false}));
    }
    views_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      views_.push_back(std::make_unique<reg::BigAtomicRegister<std::vector<T>>>(
          std::vector<T>(m, init)));
      per_process_[i].word_toggle.assign(m, 0);
    }
  }

  std::size_t size() const { return n_; }
  std::size_t words() const { return m_; }

  /// Figure 4, procedure update_i(k, value).
  void update(ProcessId i, std::size_t k, T value) {
    ASNAP_ASSERT(i < n_ && k < m_);
    WellFormednessGuard guard(per_process_[i].busy);
    ASNAP_TRACE_EVENT(trace::EventKind::kUpdateBegin, i, k);

    // Line 0: handshake — p_{i,j} := ¬q_{j,i}.
    for (std::size_t j = 0; j < n_; ++j) {
      const bool q_ji = q_.read(static_cast<ProcessId>(j), i);
      p_.write(i, static_cast<ProcessId>(j), !q_ji);
    }
    ASNAP_TRACE_EVENT(trace::EventKind::kHandshakeToggle, i, k);

    // Line 1: embedded scan, published in the single-writer view register
    // with one atomic write.
    std::vector<T> view = scan_impl(i);
    views_[i]->write(std::move(view));

    // Lines 1.5-2: flip the local per-word toggle, write the word register.
    PerProcess& me = per_process_[i];
    me.word_toggle[k] ^= 1;
    words_[k]->write(i, Word{std::move(value), i, me.word_toggle[k] != 0});
    ++me.stats.updates;
    ASNAP_TRACE_EVENT(trace::EventKind::kUpdateEnd, i, k);
  }

  /// Figure 4, procedure scan_i.
  std::vector<T> scan(ProcessId i) {
    ASNAP_ASSERT(i < n_);
    WellFormednessGuard guard(per_process_[i].busy);
    return scan_impl(i);
  }

  const ScanStats& stats(ProcessId i) const { return per_process_[i].stats; }

 private:
  struct alignas(kCacheLine) PerProcess {
    std::vector<std::uint8_t> word_toggle;  ///< local t_k, saved across calls
    ScanStats stats;
    WellFormednessFlag busy;
  };

  void collect(ProcessId reader, std::vector<Word>& out) {
    out.clear();
    out.reserve(m_);
    for (std::size_t k = 0; k < m_; ++k) {
      out.push_back(words_[k]->read(reader));
    }
  }

  std::vector<T> scan_impl(ProcessId i) {
    PerProcess& me = per_process_[i];
    std::vector<std::uint8_t> moved(n_, 0);
    std::vector<std::uint8_t> q_local(n_, 0);
    std::vector<std::uint8_t> h(n_, 0);
    std::vector<Word> a;
    std::vector<Word> b;
    std::uint64_t attempts = 0;
    ASNAP_TRACE_EVENT(trace::EventKind::kScanBegin, i, trace::kAlgoBoundedMw,
                      n_);

    for (;;) {
      // Line 0.5: handshake — q_{i,j} := p_{j,i}.
      for (std::size_t j = 0; j < n_; ++j) {
        q_local[j] = p_.read(static_cast<ProcessId>(j), i) ? 1 : 0;
        q_.write(i, static_cast<ProcessId>(j), q_local[j] != 0);
      }

      // Lines 1-2.5: two collects of the words, then the handshake bits.
      ASNAP_TRACE_EVENT(trace::EventKind::kCollectBegin, i, attempts);
      collect(i, a);
      ASNAP_TRACE_EVENT(trace::EventKind::kCollectEnd, i, attempts);
      ASNAP_TRACE_EVENT(trace::EventKind::kCollectBegin, i, attempts);
      collect(i, b);
      ASNAP_TRACE_EVENT(trace::EventKind::kCollectEnd, i, attempts);
      for (std::size_t j = 0; j < n_; ++j) {
        h[j] = p_.read(static_cast<ProcessId>(j), i) ? 1 : 0;
      }
      ++attempts;

      // Line 3: nobody moved?
      bool clean = true;
      for (std::size_t j = 0; j < n_ && clean; ++j) {
        if (q_local[j] != h[j]) clean = false;
      }
      for (std::size_t k = 0; k < m_ && clean; ++k) {
        if (a[k].id != b[k].id || a[k].toggle != b[k].toggle) clean = false;
      }
      if (clean) {
        ASNAP_TRACE_EVENT(trace::EventKind::kDoubleCollectMatch, i, attempts);
        finish_scan(i, me, attempts, /*borrowed=*/false);
        std::vector<T> values;
        values.reserve(m_);
        for (std::size_t k = 0; k < m_; ++k) values.push_back(b[k].value);
        return values;
      }
      ASNAP_TRACE_EVENT(trace::EventKind::kDoubleCollectMismatch, i, attempts);

      // Lines 5-9: attribute changes; borrow view_j on the third offense.
      for (std::size_t j = 0; j < n_; ++j) {
        bool moved_now = q_local[j] != h[j];
        if (!moved_now) {
          for (std::size_t k = 0; k < m_; ++k) {
            if (b[k].id == static_cast<ProcessId>(j) &&
                (a[k].id != b[k].id || a[k].toggle != b[k].toggle)) {
              moved_now = true;
              break;
            }
          }
        }
        if (!moved_now) continue;
        if (moved[j] == 2) {  // P_j moved three times: borrow its view
          ASNAP_TRACE_EVENT(trace::EventKind::kViewBorrowed, i, j);
          finish_scan(i, me, attempts, /*borrowed=*/true);
          std::vector<T> view = views_[j]->read();
          ASNAP_ASSERT(view.size() == m_);
          return view;
        }
        ASNAP_TRACE_EVENT(trace::EventKind::kMovedDetected, i, j);
        ++moved[j];
      }
      ASNAP_ASSERT_MSG(attempts <= 2 * n_ + 1,
                       "scan exceeded the 2n+1 double-collect bound");
    }
  }

  void finish_scan([[maybe_unused]] ProcessId i, PerProcess& me,
                   std::uint64_t attempts, bool borrowed) {
    ++me.stats.scans;
    me.stats.double_collects += attempts;
    if (attempts > me.stats.max_double_collects) {
      me.stats.max_double_collects = attempts;
    }
    if (borrowed) ++me.stats.borrowed_views;
    ASNAP_TRACE_EVENT(trace::EventKind::kScanEnd, i, attempts,
                      borrowed ? 1 : 0);
  }

  std::size_t n_;
  std::size_t m_;
  std::vector<std::unique_ptr<WordRegister>> words_;
  reg::HandshakeMatrix p_;  ///< p_{i,j}: written by updater i, read by scanner j
  reg::HandshakeMatrix q_;  ///< q_{i,j}: written by scanner i, read by updater j
  std::vector<std::unique_ptr<reg::BigAtomicRegister<std::vector<T>>>> views_;
  std::vector<PerProcess> per_process_;
};

}  // namespace asnap::core
