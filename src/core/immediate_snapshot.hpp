// One-shot IMMEDIATE snapshot (Borowsky & Gafni, 1993) — the direct
// successor of this paper's snapshot object, included as the "future
// research" extension Section 6 anticipates ("is it possible to construct
// yet more powerful primitives from registers?").
//
// An immediate snapshot combines the write and the scan into one operation
// write_read(v) that returns a view (set of (process, value) pairs)
// satisfying, for all i, j:
//
//   self-inclusion:  i ∈ view_i
//   containment:     view_i ⊆ view_j  or  view_j ⊆ view_i
//   immediacy:       j ∈ view_i  ⇒  view_j ⊆ view_i
//
// Immediacy is strictly stronger than what a write followed by a separate
// scan gives (there, j ∈ view_i only implies containment *somewhere*, not
// view_j ⊆ view_i), and it is the property that makes immediate snapshots
// the combinatorial backbone of round-by-round distributed computing (the
// standard chromatic subdivision of topology-based impossibility proofs).
//
// Algorithm (the classic level-descent / participating-set construction):
// each process holds one SWMR register (value, level), level descending
// from n+1. Repeatedly: decrement the level, publish it, collect, and let
// S = processes at level <= mine; if |S| >= my level, return S's values.
// Termination: at level 1, S contains at least the caller. O(n) iterations
// of O(n) collects = O(n^2) primitive steps, wait-free — same cost class
// as the paper's scans.
//
// One-shot object: each process may invoke write_read at most once.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/config.hpp"
#include "core/snapshot_types.hpp"
#include "reg/register_array.hpp"

namespace asnap::core {

template <typename T>
class ImmediateSnapshot {
 public:
  /// One participant's contribution as seen in a returned view.
  struct Entry {
    ProcessId pid = kNoProcess;
    T value{};
  };

  explicit ImmediateSnapshot(std::size_t n)
      : regs_(n, Slot{}), per_process_(n) {}

  std::size_t size() const { return regs_.size(); }

  /// Write value and atomically obtain an immediate view of the
  /// participants seen. May be called at most once per process id.
  std::vector<Entry> write_read(ProcessId i, T value) {
    ASNAP_ASSERT(i < size());
    WellFormednessGuard guard(per_process_[i].busy);
    ASNAP_ASSERT_MSG(!per_process_[i].done, "immediate snapshot is one-shot");
    per_process_[i].done = true;

    const std::size_t n = size();
    std::size_t level = n + 1;
    std::vector<Slot> view(n);
    for (;;) {
      ASNAP_ASSERT(level > 1);
      --level;
      regs_.write(i, Slot{true, level, value});
      collect(i, view);
      std::vector<Entry> seen;
      seen.reserve(n);
      for (std::size_t j = 0; j < n; ++j) {
        if (view[j].present && view[j].level <= level) {
          seen.push_back(Entry{static_cast<ProcessId>(j), view[j].value});
        }
      }
      if (seen.size() >= level) {
        ++per_process_[i].stats.scans;
        return seen;
      }
      ++per_process_[i].stats.double_collects;  // counts descent iterations
    }
  }

  const ScanStats& stats(ProcessId i) const { return per_process_[i].stats; }

 private:
  struct Slot {
    bool present = false;
    std::size_t level = 0;  ///< announced descent level
    T value{};
  };

  struct alignas(kCacheLine) PerProcess {
    bool done = false;
    ScanStats stats;
    WellFormednessFlag busy;
  };

  void collect(ProcessId reader, std::vector<Slot>& out) {
    for (std::size_t j = 0; j < size(); ++j) {
      out[j] = regs_.read(static_cast<ProcessId>(j), reader);
    }
  }

  reg::SharedMemoryRegisterArray<Slot> regs_;
  std::vector<PerProcess> per_process_;
};

}  // namespace asnap::core
