#include "sched/policies.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace asnap::sched {

namespace {

bool contains(const std::vector<std::size_t>& sorted, std::size_t value) {
  return std::binary_search(sorted.begin(), sorted.end(), value);
}

std::size_t lowest(const std::vector<std::size_t>& enabled) {
  ASNAP_ASSERT(!enabled.empty());
  return enabled.front();
}

}  // namespace

std::size_t RoundRobinPolicy::choose(const std::vector<std::size_t>& enabled,
                                     std::size_t current,
                                     std::uint64_t /*step*/) {
  if (current == kNone) return lowest(enabled);
  // First enabled id strictly greater than current, wrapping around.
  const auto it = std::upper_bound(enabled.begin(), enabled.end(), current);
  return it != enabled.end() ? *it : enabled.front();
}

std::size_t RandomPolicy::choose(const std::vector<std::size_t>& enabled,
                                 std::size_t /*current*/,
                                 std::uint64_t /*step*/) {
  return enabled[rng_.below(enabled.size())];
}

std::size_t StarvePolicy::choose(const std::vector<std::size_t>& enabled,
                                 std::size_t current, std::uint64_t step) {
  const bool victim_enabled = contains(enabled, victim_);
  // Everyone else done: the victim finally runs alone (wait-freedom means
  // it must finish even from here).
  if (enabled.size() == 1) return enabled.front();
  if (victim_enabled && period_ > 0 && step % period_ == 0) return victim_;
  // Round-robin over the non-victims.
  std::vector<std::size_t> others;
  others.reserve(enabled.size());
  for (std::size_t id : enabled) {
    if (id != victim_) others.push_back(id);
  }
  if (current == kNone || current == victim_) return others.front();
  const auto it = std::upper_bound(others.begin(), others.end(), current);
  return it != others.end() ? *it : others.front();
}

std::size_t ScriptedAdversaryPolicy::choose(
    const std::vector<std::size_t>& enabled, std::size_t current,
    std::uint64_t /*step*/) {
  // Mid-injection: keep running the mover until its update completes.
  if (injection_remaining_ > 0 && contains(enabled, active_mover_)) {
    --injection_remaining_;
    return active_mover_;
  }
  injection_remaining_ = 0;

  if (contains(enabled, script_.scanner)) {
    // The scanner yields BEFORE each primitive op, so after `g` grants it
    // has completed g-1 ops. Inject one solo update as soon as the scanner
    // has completed inject_offset + k*attempt_steps ops.
    const std::size_t completed =
        scanner_steps_granted_ == 0 ? 0 : scanner_steps_granted_ - 1;
    if (injections_ < script_.movers.size() &&
        scanner_steps_granted_ > 0 &&
        completed ==
            script_.inject_offset + injections_ * script_.attempt_steps) {
      active_mover_ = script_.movers[injections_];
      ASNAP_ASSERT_MSG(contains(enabled, active_mover_),
                       "scripted mover already finished");
      ++injections_;
      // A mover's very first grant only wakes its thread (it runs to the
      // yield before its first primitive op); budget one extra grant then.
      const bool first_time = started_movers_.insert(active_mover_).second;
      injection_remaining_ = script_.update_steps - (first_time ? 0 : 1);
      return active_mover_;
    }
    ++scanner_steps_granted_;
    return script_.scanner;
  }

  // Scanner finished: drain the remaining processes round-robin.
  if (current != kNone && contains(enabled, current)) return current;
  return lowest(enabled);
}

std::size_t ReplayPolicy::choose(const std::vector<std::size_t>& enabled,
                                 std::size_t current, std::uint64_t step) {
  if (step < prefix_.size()) {
    const std::size_t wanted = prefix_[step];
    ASNAP_ASSERT_MSG(contains(enabled, wanted),
                     "replay prefix chose a disabled process (the program is "
                     "not deterministic w.r.t. the schedule)");
    return wanted;
  }
  if (current != kNone && contains(enabled, current)) return current;
  return lowest(enabled);
}

std::uint64_t count_preemptions(const std::vector<Decision>& decisions) {
  std::uint64_t preemptions = 0;
  std::size_t running = Policy::kNone;
  for (const Decision& d : decisions) {
    const bool running_still_enabled =
        running != Policy::kNone && contains(d.enabled, running);
    if (running_still_enabled && d.chosen != running) ++preemptions;
    running = d.chosen;
  }
  return preemptions;
}

}  // namespace asnap::sched
