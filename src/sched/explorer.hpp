// Systematic concurrency testing: context-bounded schedule exploration
// (CHESS-style, Musuvathi & Qadeer).
//
// Exhaustively enumerating all interleavings of even a tiny snapshot run is
// hopeless (the number of interleavings of two O(n^2)-step operations is
// astronomically large), but almost all concurrency bugs manifest with very
// few preemptions. The explorer therefore enumerates ALL schedules with at
// most `max_preemptions` preemptive context switches: it runs the program
// under a replay prefix + non-preemptive default, logs every scheduling
// decision, then branches on untried choices within the preemption budget.
//
// Requirements on the program: deterministic apart from scheduling (no
// wall-clock, no unseeded randomness), and wait-free bodies.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sched/scheduler.hpp"

namespace asnap::sched {

struct ExploreConfig {
  std::uint64_t max_preemptions = 2;
  /// Safety valve: stop after this many distinct schedules.
  std::uint64_t max_runs = 50000;
};

struct ExploreResult {
  std::uint64_t runs = 0;
  bool exhausted_budget = false;  ///< true if max_runs stopped exploration
};

/// A program under test: builds fresh state and returns the process bodies
/// for one run. Called once per explored schedule.
using ProgramFactory =
    std::function<std::vector<std::function<void()>>()>;

/// Runs `factory`'s program under every schedule with at most
/// `max_preemptions` preemptions (up to max_runs). `after_run`, if given,
/// is invoked after each run to assert postconditions; it receives the
/// decision log of the completed run.
ExploreResult explore(const ProgramFactory& factory, const ExploreConfig& cfg,
                      const std::function<void(const RunReport&)>& after_run =
                          {});

}  // namespace asnap::sched
