// Scheduling policies for the deterministic turnstile scheduler.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "sched/scheduler.hpp"

namespace asnap::sched {

/// Fair rotation: the next enabled process after the one that just ran.
class RoundRobinPolicy final : public Policy {
 public:
  std::size_t choose(const std::vector<std::size_t>& enabled,
                     std::size_t current, std::uint64_t step) override;
};

/// Uniformly random choice under a fixed seed (reproducible).
class RandomPolicy final : public Policy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : seed_(seed), rng_(seed) {}
  std::size_t choose(const std::vector<std::size_t>& enabled,
                     std::size_t current, std::uint64_t step) override;
  void reset() override { rng_.reseed(seed_); }

 private:
  std::uint64_t seed_;
  Rng rng_;
};

/// Anti-victim adversary: starves one process (the scanner, typically),
/// admitting it only one step out of every `victim_period`, while everyone
/// else round-robins. Realizes the "updaters keep moving under the scanner"
/// schedules behind the pigeonhole bound (experiment E6).
class StarvePolicy final : public Policy {
 public:
  StarvePolicy(std::size_t victim, std::uint64_t victim_period)
      : victim_(victim), period_(victim_period) {}
  std::size_t choose(const std::vector<std::size_t>& enabled,
                     std::size_t current, std::uint64_t step) override;

 private:
  std::size_t victim_;
  std::uint64_t period_;
};

/// The tight adversary from the pigeonhole bound's worst case: it lets the
/// scanner run, and each time the scanner completes the FIRST collect of a
/// double collect (a known step offset within each attempt), it runs one
/// designated "mover" process solo for exactly one full update (a known,
/// deterministic number of steps when uncontended). Each attempt's double
/// collect therefore fails because of exactly one mover; with fresh movers
/// per attempt the scan is driven to the full n+1 (resp. 2n+1) double
/// collects before a view can be borrowed — realizing the paper's worst
/// case, not merely bounding it.
class ScriptedAdversaryPolicy final : public Policy {
 public:
  struct Script {
    std::size_t scanner = 0;      ///< the victim process
    std::size_t attempt_steps = 0;  ///< scanner steps per double-collect attempt
    std::size_t inject_offset = 0;  ///< scanner step (within attempt) after
                                    ///< which an update is injected
    std::size_t update_steps = 0;   ///< solo cost of one complete update
    std::vector<std::size_t> movers;  ///< mover for injection k
  };

  explicit ScriptedAdversaryPolicy(Script script)
      : script_(std::move(script)) {}

  std::size_t choose(const std::vector<std::size_t>& enabled,
                     std::size_t current, std::uint64_t step) override;

  std::size_t injections_performed() const { return injections_; }

 private:
  Script script_;
  std::size_t scanner_steps_granted_ = 0;
  std::size_t injections_ = 0;
  std::size_t injection_remaining_ = 0;
  std::size_t active_mover_ = kNone;
  std::set<std::size_t> started_movers_;  ///< movers whose thread has woken
};

/// Replays a fixed decision prefix (process ids), then continues
/// non-preemptively: keep running the current process while it is enabled,
/// else fall to the lowest enabled id. The explorer's workhorse.
class ReplayPolicy final : public Policy {
 public:
  explicit ReplayPolicy(std::vector<std::size_t> prefix)
      : prefix_(std::move(prefix)) {}

  std::size_t choose(const std::vector<std::size_t>& enabled,
                     std::size_t current, std::uint64_t step) override;

 private:
  std::vector<std::size_t> prefix_;
};

/// Number of preemptions in a decision sequence: decisions where the
/// previously running process was still enabled but a different process was
/// chosen. The context-bound metric of the explorer.
std::uint64_t count_preemptions(const std::vector<Decision>& decisions);

}  // namespace asnap::sched
