#include "sched/scheduler.hpp"

#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/assert.hpp"
#include "common/instrumentation.hpp"

namespace asnap::sched {
namespace {

/// Shared turnstile state for one run.
struct Turnstile {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t current = Policy::kNone;  ///< process allowed to run
  std::vector<bool> done;
  std::size_t live = 0;

  Policy* policy = nullptr;
  RunReport report;

  std::vector<std::size_t> enabled_snapshot() const {
    std::vector<std::size_t> enabled;
    for (std::size_t i = 0; i < done.size(); ++i) {
      if (!done[i]) enabled.push_back(i);
    }
    return enabled;
  }

  /// Under mu: consult the policy, record the decision, set `current`.
  void decide_locked(std::size_t yielding) {
    std::vector<std::size_t> enabled = enabled_snapshot();
    if (enabled.empty()) {
      current = Policy::kNone;
      cv.notify_all();
      return;
    }
    const std::size_t next =
        policy->choose(enabled, yielding, report.decisions.size());
    ASNAP_ASSERT_MSG(!done[next], "policy chose a completed process");
    report.decisions.push_back(Decision{std::move(enabled), next});
    current = next;
    cv.notify_all();
  }
};

/// Per-thread hook context: lets step_point() route into the turnstile.
struct ProcessContext {
  Turnstile* turnstile;
  std::size_t index;

  static void hook(void* ctx, StepKind /*kind*/) {
    auto* self = static_cast<ProcessContext*>(ctx);
    self->yield();
  }

  /// Called before each primitive step: give the policy a chance to switch.
  void yield() {
    Turnstile& t = *turnstile;
    std::unique_lock lock(t.mu);
    ++t.report.steps;
    t.decide_locked(index);
    t.cv.wait(lock, [&] { return t.current == index; });
  }

  /// Block until this process is scheduled for the first time.
  void wait_for_first_turn() {
    Turnstile& t = *turnstile;
    std::unique_lock lock(t.mu);
    t.cv.wait(lock, [&] { return t.current == index; });
  }

  /// Mark completion and hand control to the next process.
  void finish() {
    Turnstile& t = *turnstile;
    std::unique_lock lock(t.mu);
    t.done[index] = true;
    --t.live;
    t.decide_locked(Policy::kNone);
  }
};

}  // namespace

RunReport SimScheduler::run(std::vector<std::function<void()>> processes) {
  const std::size_t n = processes.size();
  ASNAP_ASSERT(n > 0);

  Turnstile turnstile;
  turnstile.done.assign(n, false);
  turnstile.live = n;
  turnstile.policy = &policy_;
  policy_.reset();

  {
    std::vector<std::jthread> threads;
    threads.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      threads.emplace_back([&, i, body = std::move(processes[i])] {
        ProcessContext ctx{&turnstile, i};
        ScopedStepHook hook(&ProcessContext::hook, &ctx);
        ctx.wait_for_first_turn();
        body();
        ctx.finish();
      });
    }
    // Admit the first process.
    {
      std::unique_lock lock(turnstile.mu);
      turnstile.decide_locked(Policy::kNone);
    }
  }  // join all

  ASNAP_ASSERT(turnstile.live == 0);
  return std::move(turnstile.report);
}

}  // namespace asnap::sched
