#include "sched/explorer.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "sched/policies.hpp"

namespace asnap::sched {
namespace {

struct Branch {
  std::vector<std::size_t> prefix;  ///< decision choices to replay
};

/// prefix_preemptions[k] = preemptions within decisions[0..k).
std::vector<std::uint64_t> prefix_preemptions(
    const std::vector<Decision>& decisions) {
  std::vector<std::uint64_t> out(decisions.size() + 1, 0);
  std::size_t running = Policy::kNone;
  for (std::size_t k = 0; k < decisions.size(); ++k) {
    const Decision& d = decisions[k];
    const bool still_enabled =
        running != Policy::kNone &&
        std::binary_search(d.enabled.begin(), d.enabled.end(), running);
    out[k + 1] = out[k] + (still_enabled && d.chosen != running ? 1 : 0);
    running = d.chosen;
  }
  return out;
}

}  // namespace

ExploreResult explore(const ProgramFactory& factory, const ExploreConfig& cfg,
                      const std::function<void(const RunReport&)>& after_run) {
  ExploreResult result;
  std::vector<Branch> stack;
  stack.push_back(Branch{{}});

  while (!stack.empty()) {
    if (result.runs >= cfg.max_runs) {
      result.exhausted_budget = true;
      return result;
    }
    const Branch branch = std::move(stack.back());
    stack.pop_back();

    ReplayPolicy policy(branch.prefix);
    SimScheduler scheduler(policy);
    const RunReport report = scheduler.run(factory());
    ++result.runs;
    if (after_run) after_run(report);

    // Branch on every decision point at or beyond this branch's frontier.
    // Decisions before the frontier were already branched by ancestors.
    // Reverse order gives DFS a stack-friendly layout; order is irrelevant
    // for coverage.
    const std::vector<std::uint64_t> preempt_before =
        prefix_preemptions(report.decisions);
    for (std::size_t pos = report.decisions.size(); pos-- > branch.prefix.size();) {
      const Decision& d = report.decisions[pos];
      if (d.enabled.size() < 2) continue;
      const std::uint64_t base_preemptions = preempt_before[pos];
      // Who was running before this decision?
      const std::size_t running =
          pos == 0 ? Policy::kNone : report.decisions[pos - 1].chosen;
      for (const std::size_t alt : d.enabled) {
        if (alt == d.chosen) continue;
        const bool alt_preempts =
            running != Policy::kNone &&
            std::binary_search(d.enabled.begin(), d.enabled.end(), running) &&
            alt != running;
        if (base_preemptions + (alt_preempts ? 1 : 0) > cfg.max_preemptions) {
          continue;
        }
        Branch next;
        next.prefix.reserve(pos + 1);
        for (std::size_t k = 0; k < pos; ++k) {
          next.prefix.push_back(report.decisions[k].chosen);
        }
        next.prefix.push_back(alt);
        stack.push_back(std::move(next));
      }
    }
  }
  return result;
}

}  // namespace asnap::sched
