// Deterministic turnstile scheduler: fully controlled interleaving of the
// algorithms' primitive register steps.
//
// The paper's proofs reason about runs alpha = pi_1 pi_2 ... — sequences of
// atomic register reads/writes. This module realizes exactly that model in
// executable form: each logical process runs on a real thread, but a
// turnstile admits only one thread at a time, and every primitive register
// operation (via the common/instrumentation step hook) is a yield point at
// which a scheduling Policy picks the next process to run. Consequences:
//
//   * a run is reproducible from its decision sequence (replay debugging);
//   * adversarial schedules from the lemmas (stall the scanner between its
//     two collects, run an updater to completion, ...) can be constructed
//     deliberately rather than hoped for;
//   * the explorer (explorer.hpp) can systematically enumerate schedules.
//
// Only wait-free code may run under the scheduler: a process that blocks on
// a mutex instead of a register step would freeze the turnstile.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/config.hpp"

namespace asnap::sched {

/// One scheduling decision: which processes were runnable, who ran.
struct Decision {
  std::vector<std::size_t> enabled;  ///< runnable process ids, ascending
  std::size_t chosen = 0;            ///< the id the policy picked
};

/// What a completed deterministic run looked like.
struct RunReport {
  std::uint64_t steps = 0;           ///< primitive steps executed in total
  std::vector<Decision> decisions;   ///< every scheduling decision, in order
};

/// Scheduling policy: picks the next process at every decision point.
class Policy {
 public:
  virtual ~Policy() = default;

  /// `enabled` is non-empty and sorted ascending. `current` is the process
  /// that executed the previous step, or kNone before the first step and
  /// after the previous process completed. `step` counts decisions so far.
  virtual std::size_t choose(const std::vector<std::size_t>& enabled,
                             std::size_t current, std::uint64_t step) = 0;

  /// Called once per run before the first decision.
  virtual void reset() {}

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
};

/// Runs a set of process bodies to completion under a policy, one primitive
/// step at a time. Not reusable: construct one per run.
class SimScheduler {
 public:
  explicit SimScheduler(Policy& policy) : policy_(policy) {}

  /// Executes all processes to completion; returns the decision log.
  /// Bodies must be wait-free (must not block other than on register steps).
  RunReport run(std::vector<std::function<void()>> processes);

 private:
  Policy& policy_;
};

}  // namespace asnap::sched
