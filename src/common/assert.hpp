// Lightweight always-on assertion used for protocol invariants.
//
// The algorithms in this library are reference implementations of published
// wait-free protocols; silently corrupting an invariant would invalidate
// every experiment built on top. We therefore keep invariant checks on in
// all build types (they are cheap: single predicates on local state).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace asnap::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "asnap invariant violated: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg ? msg : "");
  std::abort();
}

}  // namespace asnap::detail

#define ASNAP_ASSERT(expr)                                                 \
  do {                                                                     \
    if (!(expr)) [[unlikely]]                                              \
      ::asnap::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr);    \
  } while (0)

#define ASNAP_ASSERT_MSG(expr, msg)                                        \
  do {                                                                     \
    if (!(expr)) [[unlikely]]                                              \
      ::asnap::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));      \
  } while (0)

// Debug-build-only invariant check, for predicates on hot paths where even
// a cheap always-on test is unwelcome (e.g. per-acquire refcount bounds).
// Compiled out under NDEBUG like the standard assert.
#if defined(NDEBUG)
#define ASNAP_DEBUG_ASSERT_MSG(expr, msg) ((void)0)
#else
#define ASNAP_DEBUG_ASSERT_MSG(expr, msg) ASNAP_ASSERT_MSG(expr, msg)
#endif
