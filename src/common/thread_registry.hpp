// Stable small integer ids for OS threads.
//
// The hazard-pointer domain (hazard/) needs a bounded table indexed by a
// dense thread id. Ids are recycled when a thread exits, so long-running
// test suites that create and join many std::jthreads do not exhaust the
// kMaxThreads table.
#pragma once

#include <cstddef>

#include "common/config.hpp"

namespace asnap {

/// Returns a dense id in [0, kMaxThreads) unique to the calling thread for
/// its lifetime. Aborts if more than kMaxThreads threads are simultaneously
/// registered (a configuration error, not a runtime condition).
std::size_t this_thread_id();

/// Number of ids currently claimed (for tests).
std::size_t registered_thread_count();

}  // namespace asnap
