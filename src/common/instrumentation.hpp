// Per-thread instrumentation of primitive shared-memory steps.
//
// Every primitive read or write of an embedded atomic register in this
// library funnels through step_point(). This single choke point serves three
// purposes:
//
//   1. Complexity measurement (experiment E5/E7): per-thread counters of
//      primitive register operations let benchmarks measure the paper's
//      O(n^2) step bound (Lemmas 3.4 / 4.4) and the Section-6 compound cost
//      directly, instead of inferring it from wall-clock time.
//
//   2. Deterministic scheduling (sched/): the per-thread hook, when set by
//      the turnstile scheduler, yields control before every primitive step,
//      turning an arbitrary multithreaded execution into a fully controlled
//      interleaving of atomic events — exactly the event granularity at
//      which the paper's correctness proofs reason.
//
//   3. Failure-point injection in tests (stalling a process at a chosen
//      step to realize the adversarial schedules from the proofs of
//      Lemmas 3.1 / 4.1 / 5.1).
//
// The hook is thread-local, so production use (hook unset) costs one
// thread-local load and one increment per register operation.
#pragma once

#include <cstdint>

namespace asnap {

enum class StepKind : std::uint8_t {
  kRegisterRead = 0,
  kRegisterWrite = 1,
};

/// Counters of primitive operations executed by the current thread.
struct StepCounters {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;

  std::uint64_t total() const { return reads + writes; }

  StepCounters operator-(const StepCounters& rhs) const {
    return StepCounters{reads - rhs.reads, writes - rhs.writes};
  }
};

/// Per-thread counters for message-round retry behaviour (the ABD client
/// loops over the lossy network). Complements StepCounters: steps measure
/// shared-memory complexity, retries measure message-passing robustness
/// overhead (rounds started, broadcasts retransmitted, duplicate replies
/// discarded by the per-responder dedup, rounds abandoned at deadline).
struct RetryCounters {
  std::uint64_t rounds = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t dup_replies = 0;
  std::uint64_t timeouts = 0;

  RetryCounters operator-(const RetryCounters& rhs) const {
    return RetryCounters{rounds - rhs.rounds, retransmits - rhs.retransmits,
                         dup_replies - rhs.dup_replies,
                         timeouts - rhs.timeouts};
  }
};

/// Hook invoked before every primitive step of the calling thread.
using StepHook = void (*)(void* ctx, StepKind kind);

struct ThreadStepState {
  StepCounters counters;
  RetryCounters retries;
  StepHook hook = nullptr;
  void* hook_ctx = nullptr;
};

/// Access the calling thread's instrumentation state.
ThreadStepState& step_state();

/// Called by every register implementation immediately before performing a
/// primitive read or write of shared memory.
inline void step_point(StepKind kind) {
  ThreadStepState& s = step_state();
  if (kind == StepKind::kRegisterRead) {
    ++s.counters.reads;
  } else {
    ++s.counters.writes;
  }
  if (s.hook != nullptr) s.hook(s.hook_ctx, kind);
}

/// RAII installer for a step hook on the current thread. Restores the
/// previous hook on destruction so scopes nest correctly.
class ScopedStepHook {
 public:
  ScopedStepHook(StepHook hook, void* ctx) : saved_(step_state()) {
    step_state().hook = hook;
    step_state().hook_ctx = ctx;
  }
  ~ScopedStepHook() {
    step_state().hook = saved_.hook;
    step_state().hook_ctx = saved_.hook_ctx;
  }
  ScopedStepHook(const ScopedStepHook&) = delete;
  ScopedStepHook& operator=(const ScopedStepHook&) = delete;

 private:
  ThreadStepState saved_;
};

/// Events on the message-round retry path, recorded per thread so a test or
/// bench can attribute retransmission overhead to the operation it just ran.
inline void note_round() { ++step_state().retries.rounds; }
inline void note_retransmit() { ++step_state().retries.retransmits; }
inline void note_dup_reply() { ++step_state().retries.dup_replies; }
inline void note_round_timeout() { ++step_state().retries.timeouts; }

/// Measures the retry events recorded by the current thread between
/// construction and elapsed() — the message-passing analogue of StepMeter.
class RetryMeter {
 public:
  RetryMeter() : start_(step_state().retries) {}
  RetryCounters elapsed() const { return step_state().retries - start_; }
  void reset() { start_ = step_state().retries; }

 private:
  RetryCounters start_;
};

/// Measures the primitive operations executed by the current thread between
/// construction and elapsed().
class StepMeter {
 public:
  StepMeter() : start_(step_state().counters) {}
  StepCounters elapsed() const { return step_state().counters - start_; }
  void reset() { start_ = step_state().counters; }

 private:
  StepCounters start_;
};

}  // namespace asnap
