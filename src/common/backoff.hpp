// Bounded exponential backoff for optimistic retry loops (seqlock baseline,
// hazard-pointer protect loops) and for timed retransmission loops (the ABD
// client rounds over the lossy network). Backoff spins with a growing pause
// budget, then yields to the OS scheduler so oversubscribed test runs stay
// live; RetryBackoff grows a retransmission timeout between a configured
// floor and ceiling.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace asnap {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

class Backoff {
 public:
  void pause() {
    if (spins_ < kMaxSpins) {
      for (std::uint32_t i = 0; i < spins_; ++i) cpu_relax();
      spins_ *= 2;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() { spins_ = 1; }

 private:
  static constexpr std::uint32_t kMaxSpins = 1024;
  std::uint32_t spins_ = 1;
};

/// Exponential retransmission timeout for message rounds over a lossy
/// network: current() is how long to wait for a reply before retransmitting;
/// grow() doubles it up to the ceiling. Unlike Backoff this never sleeps
/// itself — the caller owns the timed wait (Mailbox::receive_until).
class RetryBackoff {
 public:
  RetryBackoff(std::chrono::microseconds initial, std::chrono::microseconds max)
      : initial_(initial), max_(max), current_(initial) {}

  std::chrono::microseconds current() const { return current_; }

  void grow() { current_ = std::min(max_, current_ * 2); }

  void reset() { current_ = initial_; }

 private:
  std::chrono::microseconds initial_;
  std::chrono::microseconds max_;
  std::chrono::microseconds current_;
};

}  // namespace asnap
