// Bounded exponential backoff for optimistic retry loops (seqlock baseline,
// hazard-pointer protect loops). Spins with a growing pause budget, then
// yields to the OS scheduler so oversubscribed test runs stay live.
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace asnap {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

class Backoff {
 public:
  void pause() {
    if (spins_ < kMaxSpins) {
      for (std::uint32_t i = 0; i < spins_; ++i) cpu_relax();
      spins_ *= 2;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() { spins_ = 1; }

 private:
  static constexpr std::uint32_t kMaxSpins = 1024;
  std::uint32_t spins_ = 1;
};

}  // namespace asnap
