#include "common/instrumentation.hpp"

namespace asnap {

ThreadStepState& step_state() {
  thread_local ThreadStepState state;
  return state;
}

}  // namespace asnap
