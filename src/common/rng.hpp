// Small, fast, seedable PRNGs used throughout tests, schedulers and
// benchmarks. Determinism under a fixed seed is a hard requirement for the
// schedule-replay machinery in sched/, so we implement the generators
// ourselves rather than rely on unspecified standard-library distributions.
#pragma once

#include <cstdint>

namespace asnap {

/// splitmix64 — used to expand a user seed into well-mixed state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast general-purpose generator with 256-bit state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EED5EED5EED5EEDULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform01() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace asnap
