#include "common/thread_registry.hpp"

#include <atomic>

#include "common/assert.hpp"

namespace asnap {
namespace {

// Bitmap-free claim table: slot i is taken iff taken[i] is true.
// Claim/release are rare (thread birth/death), so a simple CAS scan is fine.
std::atomic<bool> g_taken[kMaxThreads];
std::atomic<std::size_t> g_count{0};

std::size_t claim_slot() {
  for (std::size_t i = 0; i < kMaxThreads; ++i) {
    bool expected = false;
    if (g_taken[i].compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
      g_count.fetch_add(1, std::memory_order_relaxed);
      return i;
    }
  }
  ASNAP_ASSERT_MSG(false, "more than kMaxThreads live threads registered");
  return 0;  // unreachable
}

void release_slot(std::size_t slot) {
  g_taken[slot].store(false, std::memory_order_release);
  g_count.fetch_sub(1, std::memory_order_relaxed);
}

struct SlotHolder {
  std::size_t slot;
  SlotHolder() : slot(claim_slot()) {}
  ~SlotHolder() { release_slot(slot); }
};

}  // namespace

std::size_t this_thread_id() {
  thread_local SlotHolder holder;
  return holder.slot;
}

std::size_t registered_thread_count() {
  return g_count.load(std::memory_order_relaxed);
}

}  // namespace asnap
