// Global build-time configuration for the atomic-snapshots library.
//
// The paper ("Atomic Snapshots of Shared Memory", Afek et al., PODC 1990)
// assumes a fixed, known set of n processes. We mirror that: every shared
// object is constructed for an explicit process count, and every operation
// is invoked through a handle bound to one process id in {0..n-1}.
#pragma once

#include <cstddef>
#include <cstdint>

namespace asnap {

/// Upper bound on the number of concurrently registered OS threads that may
/// touch any shared object in this library. This bounds the size of the
/// hazard-pointer table; it is an implementation-level bound, independent of
/// the per-object process count n. Sized for the sharded-fabric load sweeps,
/// which run M = 256+ client threads against one process (E13-shard).
inline constexpr std::size_t kMaxThreads = 512;

/// Destructive-interference distance used to pad per-thread slots.
/// std::hardware_destructive_interference_size is not reliably available on
/// every standard library, so we fix the conventional 64 bytes and over-align
/// to 2x where false sharing matters most.
inline constexpr std::size_t kCacheLine = 64;

/// Process identifier within one shared object (the paper's P_i index).
using ProcessId = std::uint32_t;

/// Invalid / unset process id sentinel.
inline constexpr ProcessId kNoProcess = static_cast<ProcessId>(-1);

}  // namespace asnap
