// Chandy–Lamport distributed snapshots [CL85] — the comparison point of the
// paper's Section 6 discussion:
//
//   "Interestingly, distributed snapshots are not true instantaneous images
//    of the global state, such as scans of snapshot memories produce.
//    However, distributed snapshots are indistinguishable, within the
//    system itself, from true instantaneous images."
//
// This module makes that contrast executable. A TokenBank runs n processes
// exchanging tokens over FIFO channels (the CL algorithm requires FIFO —
// note the deliberate difference from net::Network, which reorders). A
// snapshot is initiated by one process recording its state and flooding
// marker messages; every process records its state on first marker and
// records each incoming channel's in-flight messages until that channel's
// marker arrives.
//
// Two measurable properties, reported by GlobalSnapshot:
//   * CONSISTENCY: recorded process states + recorded channel contents
//     conserve the total token count (the cut is a consistent global
//     state) — tests assert this always holds;
//   * NON-INSTANTANEITY: each process also stamps a global logical clock
//     when it records; the spread max-min of those stamps is typically
//     far greater than zero — the recorded states belong to different
//     moments. An atomic snapshot memory scan has spread zero by
//     definition (a single linearization point). See
//     examples/distributed_vs_atomic.cpp.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"

namespace asnap::cl {

using Amount = std::int64_t;

/// The assembled result of one Chandy–Lamport snapshot.
struct GlobalSnapshot {
  std::vector<Amount> states;  ///< recorded balance per process
  /// in-flight messages recorded per ordered channel (from, to).
  std::map<std::pair<ProcessId, ProcessId>, std::vector<Amount>> channels;
  /// global logical-clock stamp at which each process recorded its state.
  std::vector<std::uint64_t> record_instants;

  Amount total() const;
  std::uint64_t instant_spread() const;  ///< max - min of record_instants
  std::size_t in_flight_count() const;
};

/// n processes randomly transferring tokens over FIFO channels, with
/// Chandy–Lamport snapshot support. Threads start in the constructor and
/// run until stop()/destruction.
class TokenBank {
 public:
  TokenBank(std::size_t n, Amount initial_per_process, std::uint64_t seed);
  ~TokenBank();

  TokenBank(const TokenBank&) = delete;
  TokenBank& operator=(const TokenBank&) = delete;

  std::size_t size() const { return n_; }
  Amount expected_total() const {
    return static_cast<Amount>(n_) * initial_per_process_;
  }

  /// Initiate a snapshot at process 0 and block until every process has
  /// recorded and every channel is closed. Transfers continue concurrently.
  GlobalSnapshot snapshot();

  /// Stop all transfers, drain every channel, and return the quiescent
  /// balances (for end-to-end conservation checks).
  std::vector<Amount> drain_and_stop();

  /// Monotone count of state changes (sends/receives) across the system.
  std::uint64_t clock() const {
    return clock_.load(std::memory_order_relaxed);
  }

 private:
  enum class MsgType : std::uint8_t { kTransfer, kMarker };
  struct Msg {
    MsgType type;
    Amount amount = 0;
    /// True iff the sender had NOT yet recorded its state when it sent this
    /// message (i.e. the send is on the pre-cut side of snapshot
    /// `sent_snap_id`). Used to check the [CL85] cut-consistency invariants
    /// at receive time:
    ///   * a message applied before the receiver records must have been
    ///     sent before the sender recorded (no message from the future);
    ///   * a message captured in a channel log was sent pre-cut;
    ///   * a message arriving on a closed channel was sent post-cut (FIFO).
    /// A message sent during an OLDER snapshot (or none) is pre-cut with
    /// respect to any later snapshot.
    bool sent_pre_cut = true;
    std::uint64_t sent_snap_id = 0;  ///< 0 = no snapshot active at send
  };

  struct Channel {
    std::mutex mu;
    std::deque<Msg> fifo;
  };

  struct SnapState {
    bool recorded = false;
    Amount recorded_balance = 0;
    std::uint64_t recorded_at = 0;
    // Per incoming channel: are we recording it, and what arrived.
    std::vector<std::uint8_t> channel_open;   // 1 = still recording
    std::vector<std::vector<Amount>> channel_log;
  };

  Channel& channel(ProcessId from, ProcessId to) {
    return *channels_[static_cast<std::size_t>(from) * n_ + to];
  }

  void process_loop(ProcessId me, std::uint64_t seed);
  void record_state(ProcessId me);
  void handle_marker(ProcessId me, ProcessId from);
  void handle_transfer(ProcessId me, ProcessId from, Amount amount,
                       bool sent_pre_cut, std::uint64_t sent_snap_id);
  void maybe_finish_snapshot();

  std::size_t n_;
  Amount initial_per_process_;
  std::vector<Amount> balances_;  ///< balances_[i] touched only by thread i
  std::vector<std::unique_ptr<Channel>> channels_;
  std::atomic<std::uint64_t> clock_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> transfers_enabled_{true};
  std::atomic<int> in_hand_{0};  ///< messages popped but not yet applied

  // Snapshot coordination (one snapshot at a time).
  std::mutex snap_mu_;
  std::condition_variable snap_cv_;
  bool snap_active_ = false;
  std::uint64_t snap_id_ = 0;  ///< current/most recent snapshot number
  bool snap_requested_ = false;  ///< process 0 should initiate
  std::size_t snap_channels_open_ = 0;
  std::size_t snap_unrecorded_ = 0;
  std::vector<SnapState> snap_;
  GlobalSnapshot snap_result_;

  std::vector<std::jthread> threads_;
};

}  // namespace asnap::cl
