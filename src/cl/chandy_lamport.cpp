#include "cl/chandy_lamport.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace asnap::cl {

// ---------------------------------------------------------------------------
// GlobalSnapshot
// ---------------------------------------------------------------------------

Amount GlobalSnapshot::total() const {
  Amount sum = 0;
  for (const Amount s : states) sum += s;
  for (const auto& [channel, msgs] : channels) {
    (void)channel;
    for (const Amount m : msgs) sum += m;
  }
  return sum;
}

std::uint64_t GlobalSnapshot::instant_spread() const {
  if (record_instants.empty()) return 0;
  const auto [lo, hi] =
      std::minmax_element(record_instants.begin(), record_instants.end());
  return *hi - *lo;
}

std::size_t GlobalSnapshot::in_flight_count() const {
  std::size_t count = 0;
  for (const auto& [channel, msgs] : channels) {
    (void)channel;
    count += msgs.size();
  }
  return count;
}

// ---------------------------------------------------------------------------
// TokenBank
// ---------------------------------------------------------------------------

TokenBank::TokenBank(std::size_t n, Amount initial_per_process,
                     std::uint64_t seed)
    : n_(n),
      initial_per_process_(initial_per_process),
      balances_(n, initial_per_process) {
  ASNAP_ASSERT(n >= 2);
  channels_.reserve(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    channels_.push_back(std::make_unique<Channel>());
  }
  threads_.reserve(n);
  for (std::size_t p = 0; p < n; ++p) {
    threads_.emplace_back([this, p, seed] {
      process_loop(static_cast<ProcessId>(p), seed * 31 + p);
    });
  }
}

TokenBank::~TokenBank() {
  stop_.store(true, std::memory_order_release);
  threads_.clear();  // join
}

void TokenBank::process_loop(ProcessId me, std::uint64_t seed) {
  Rng rng(seed);
  while (!stop_.load(std::memory_order_acquire)) {
    bool did_something = false;

    // Poll every incoming FIFO channel.
    for (std::size_t f = 0; f < n_; ++f) {
      if (f == me) continue;
      const auto from = static_cast<ProcessId>(f);
      Msg msg;
      {
        Channel& ch = channel(from, me);
        std::lock_guard lock(ch.mu);
        if (ch.fifo.empty()) continue;
        msg = ch.fifo.front();
        ch.fifo.pop_front();
        in_hand_.fetch_add(1, std::memory_order_acq_rel);
      }
      if (msg.type == MsgType::kTransfer) {
        handle_transfer(me, from, msg.amount, msg.sent_pre_cut,
                        msg.sent_snap_id);
      } else {
        handle_marker(me, from);
      }
      in_hand_.fetch_sub(1, std::memory_order_acq_rel);
      did_something = true;
    }

    // Process 0 initiates a requested snapshot.
    if (me == 0) {
      std::unique_lock lock(snap_mu_);
      if (snap_requested_) {
        snap_requested_ = false;
        record_state(me);
        maybe_finish_snapshot();
      }
    }

    // Spontaneous transfer.
    if (transfers_enabled_.load(std::memory_order_acquire) &&
        balances_[me] > 0 && rng.chance(0.6)) {
      auto to = static_cast<ProcessId>(rng.below(n_ - 1));
      if (to >= me) ++to;
      const Amount amount = 1 + static_cast<Amount>(rng.below(
                                    static_cast<std::uint64_t>(
                                        std::min<Amount>(5, balances_[me]))));
      balances_[me] -= amount;
      clock_.fetch_add(1, std::memory_order_relaxed);
      // Which side of the cut is this send on? Only this thread can record
      // this process's state, so the flag cannot change before the push.
      bool pre_cut = true;
      std::uint64_t sent_snap_id = 0;
      {
        std::lock_guard lock(snap_mu_);
        if (snap_active_) {
          sent_snap_id = snap_id_;
          pre_cut = !snap_[me].recorded;
        }
      }
      Channel& ch = channel(me, to);
      std::lock_guard lock(ch.mu);
      ch.fifo.push_back(Msg{MsgType::kTransfer, amount, pre_cut,
                            sent_snap_id});
      did_something = true;
    }

    if (!did_something) std::this_thread::yield();
  }
}

void TokenBank::handle_transfer(ProcessId me, ProcessId from, Amount amount,
                                bool sent_pre_cut, std::uint64_t sent_snap_id) {
  balances_[me] += amount;
  clock_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(snap_mu_);
  if (!snap_active_) return;
  // A message sent before this snapshot began is pre-cut by definition.
  if (sent_snap_id != snap_id_) sent_pre_cut = true;
  if (!snap_[me].recorded) {
    // Pre-cut receive: the [CL85] consistency invariant — a message applied
    // before the receiver's record point must have been sent before the
    // sender's record point (else the sender's marker, which precedes it on
    // the FIFO channel, would already have made us record).
    ASNAP_ASSERT_MSG(sent_pre_cut,
                     "cut inconsistency: received a post-cut message before "
                     "recording (FIFO/marker discipline broken)");
    return;
  }
  if (snap_[me].channel_open[from] != 0) {
    // In-flight at the cut: arrived after I recorded, before this channel's
    // marker. Part of the recorded global state — and necessarily sent
    // pre-cut (a post-cut send follows the sender's marker on the FIFO).
    ASNAP_ASSERT_MSG(sent_pre_cut,
                     "cut inconsistency: logged a post-cut message as "
                     "in-flight channel state");
    snap_[me].channel_log[from].push_back(amount);
  } else {
    // Channel already closed: the marker passed, so this message was sent
    // after the sender recorded.
    ASNAP_ASSERT_MSG(!sent_pre_cut,
                     "cut inconsistency: pre-cut message arrived after the "
                     "sender's marker (FIFO violated)");
  }
}

/// Caller must hold snap_mu_.
void TokenBank::record_state(ProcessId me) {
  SnapState& mine = snap_[me];
  ASNAP_ASSERT(!mine.recorded);
  mine.recorded = true;
  mine.recorded_balance = balances_[me];
  mine.recorded_at = clock_.load(std::memory_order_relaxed);
  ASNAP_ASSERT(snap_unrecorded_ > 0);
  --snap_unrecorded_;
  // Flood markers on every outgoing channel (FIFO: everything I sent before
  // this marker precedes it; everything after follows it).
  for (std::size_t t = 0; t < n_; ++t) {
    if (t == me) continue;
    Channel& ch = channel(me, static_cast<ProcessId>(t));
    std::lock_guard lock(ch.mu);
    ch.fifo.push_back(Msg{MsgType::kMarker, 0});
  }
}

void TokenBank::handle_marker(ProcessId me, ProcessId from) {
  std::lock_guard lock(snap_mu_);
  ASNAP_ASSERT_MSG(snap_active_, "marker outside an active snapshot");
  SnapState& mine = snap_[me];
  if (!mine.recorded) {
    record_state(me);
    // First marker: the channel it arrived on is recorded as EMPTY.
  }
  ASNAP_ASSERT(mine.channel_open[from] != 0);
  mine.channel_open[from] = 0;
  ASNAP_ASSERT(snap_channels_open_ > 0);
  --snap_channels_open_;
  maybe_finish_snapshot();
}

/// Caller must hold snap_mu_.
void TokenBank::maybe_finish_snapshot() {
  if (snap_active_ && snap_unrecorded_ == 0 && snap_channels_open_ == 0) {
    snap_cv_.notify_all();
  }
}

GlobalSnapshot TokenBank::snapshot() {
  std::unique_lock lock(snap_mu_);
  snap_cv_.wait(lock, [&] { return !snap_active_; });  // one at a time

  snap_.assign(n_, SnapState{});
  for (SnapState& s : snap_) {
    s.channel_open.assign(n_, 1);
    s.channel_open[&s - snap_.data()] = 0;  // no self-channel
    s.channel_log.assign(n_, {});
  }
  snap_channels_open_ = n_ * (n_ - 1);
  snap_unrecorded_ = n_;
  snap_active_ = true;
  ++snap_id_;
  snap_requested_ = true;  // picked up by process 0's loop

  snap_cv_.wait(lock, [&] {
    return snap_unrecorded_ == 0 && snap_channels_open_ == 0;
  });

  GlobalSnapshot result;
  result.states.resize(n_);
  result.record_instants.resize(n_);
  for (std::size_t p = 0; p < n_; ++p) {
    result.states[p] = snap_[p].recorded_balance;
    result.record_instants[p] = snap_[p].recorded_at;
    for (std::size_t f = 0; f < n_; ++f) {
      if (f == p || snap_[p].channel_log[f].empty()) continue;
      result.channels[{static_cast<ProcessId>(f),
                       static_cast<ProcessId>(p)}] = snap_[p].channel_log[f];
    }
  }
  snap_active_ = false;
  snap_cv_.notify_all();
  return result;
}

std::vector<Amount> TokenBank::drain_and_stop() {
  transfers_enabled_.store(false, std::memory_order_release);
  // Wait until every channel is empty and no message is mid-handling, twice
  // in a row (a process observed mid-send can add at most one more message,
  // which the next round sees).
  int consecutive_empty = 0;
  while (consecutive_empty < 3) {
    bool all_empty = in_hand_.load(std::memory_order_acquire) == 0;
    for (const auto& ch : channels_) {
      std::lock_guard lock(ch->mu);
      if (!ch->fifo.empty()) {
        all_empty = false;
        break;
      }
    }
    consecutive_empty = all_empty ? consecutive_empty + 1 : 0;
    std::this_thread::yield();
  }
  stop_.store(true, std::memory_order_release);
  threads_.clear();  // join
  return balances_;
}

}  // namespace asnap::cl
