// Sharded snapshot fabric: S independent SnapshotService shards behind one
// front door, with a *global* consistent scan recovered by a two-level
// snapshot.
//
// Why: one SnapshotService is the scaling wall (E11-svc: update throughput
// collapses 1.33M -> 0.38M ops/s as M grows past n, because every client
// contends on the same n slots, one batch mutex set, and one scan cache).
// The paper's own layered construction (core/layered_mw_snapshot.hpp: a
// snapshot whose words are themselves summaries of lower-level objects) and
// the progress-space tradeoff of Imbs-Kuznetsov-Rieutord both suggest the
// fix: don't make one instance wider, run S narrow instances and compose.
//
// Structure:
//
//   * Each shard is a full SnapshotService — its own backend (n words), its
//     own SlotLeaseManager, batcher and generation-validated scan cache.
//     Shards share NOTHING on the update path, so update throughput scales
//     with S until the machine runs out of cores (experiment E13-shard).
//
//   * Clients are routed by hash: shard_of(client) = splitmix64(client) % S,
//     deterministic and stateless. A client's words live in its shard's
//     range [shard * n, shard * n + n) of the global word space; values are
//     built with the GLOBAL word index, so merged histories keep the
//     single-writer-per-word discipline the exact checker relies on.
//
//   * global_scan() is the two-level snapshot. Level 2 is a virtual
//     "coordination snapshot" whose word s is shard s's generation counter
//     (svc::SnapshotService::generation(), bumped after every backend
//     write). A global scan double-collects that vector around a round of
//     per-shard level-1 scans:
//
//         G1 := (generation_0, ..., generation_{S-1})     // collect 1
//         view_s := shard s's scan (cache or backend)      // level-1 scans
//         G2 := (generation_0, ..., generation_{S-1})     // collect 2
//         if G1 == G2: the concatenated view is consistent // Observation 1
//
//     This is exactly the paper's double-collect argument lifted one level:
//     an unchanged generation vector proves no update completed anywhere in
//     the fabric during the window, so every per-shard view coexists at one
//     instant inside it (the full linearization argument, including why a
//     generation-current *cached* view composes, is DESIGN.md §12).
//
//   * Liveness: under relentless writes the double collect can keep
//     failing, so after max_global_attempts rounds the fabric falls back to
//     a *sealed* scan — it quiesces every shard (ScanSeal holds all slot
//     execution mutexes, shards taken in index order) and reads the exact
//     state. That trades a bounded stall for termination, playing the role
//     the paper's scan-borrowing plays for its unbounded double collect.
//     An alternative composition over src/cl/ Chandy-Lamport markers was
//     considered and rejected: CL snapshots channel state of a fixed
//     process graph, while the generation vector is exactly the "summary
//     word" shape layered_mw_snapshot already proves out.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/config.hpp"
#include "svc/errors.hpp"
#include "svc/lease_manager.hpp"
#include "svc/service.hpp"
#include "trace/event.hpp"

namespace asnap::shard {

struct FabricConfig {
  /// Applied to every shard's service (lease TTL, batching, cache, gate).
  svc::ServiceConfig service;
  /// Generation-confirmed global-scan rounds before the sealed fallback.
  std::size_t max_global_attempts = 8;
  /// Salt for the client -> shard routing hash.
  std::uint64_t route_seed = 0x5368617264466162ULL;  // "ShardFab"
};

/// Fabric-level counters (global scans only; per-shard service counters are
/// aggregated separately by stats()).
struct FabricStats {
  std::uint64_t global_scans = 0;
  std::uint64_t global_scan_attempts = 0;   ///< confirmation rounds run
  std::uint64_t global_confirm_failures = 0;///< shards seen moving mid-round
  std::uint64_t sealed_scans = 0;           ///< fallbacks after retry budget
};

/// S independent snapshot services composed into one word space of
/// S * words_per_shard words. Backend is any type SnapshotService accepts.
template <typename Backend, typename T>
class ShardedSnapshotFabric {
 public:
  using Service = svc::SnapshotService<Backend, T>;

  /// Per-client handle: the home shard plus the inner service session.
  /// NOT thread-safe (one session per client thread), like ClientSession.
  class Session {
   public:
    Session() = default;
    bool connected() const { return inner_.connected(); }
    std::size_t shard() const { return shard_; }
    /// Leased slot as a GLOBAL word index.
    std::size_t slot() const { return base_ + inner_.slot(); }
    svc::ClientId client() const { return inner_.client(); }

   private:
    friend class ShardedSnapshotFabric;
    std::size_t shard_ = 0;
    std::size_t base_ = 0;  ///< shard_ * words_per_shard
    typename Service::ClientSession inner_;
  };

  struct ConnectResult {
    svc::SvcError error = svc::SvcError::kOk;
    Session session;
  };
  using OpResult = typename Service::OpResult;

  /// Shard-local scan: view covers global words
  /// [word_base, word_base + view.size()).
  struct ScanResult {
    svc::SvcError error = svc::SvcError::kOk;
    std::vector<T> view;
    std::size_t word_base = 0;
    bool cache_hit = false;
    std::uint64_t flushed_through = 0;
  };

  struct GlobalScanResult {
    std::vector<T> view;  ///< width = shards() * words_per_shard()
    std::uint64_t attempts = 0;  ///< confirmation rounds used
    bool sealed = false;  ///< served by the quiesce fallback
  };

  /// Takes ownership of one backend per shard; all must have equal size.
  ShardedSnapshotFabric(std::vector<std::unique_ptr<Backend>> backends,
                        FabricConfig cfg = {})
      : cfg_(cfg), backends_(std::move(backends)) {
    ASNAP_ASSERT_MSG(!backends_.empty(), "fabric needs at least one shard");
    words_per_shard_ = backends_.front()->size();
    services_.reserve(backends_.size());
    for (auto& backend : backends_) {
      ASNAP_ASSERT_MSG(backend->size() == words_per_shard_,
                       "all shards must have the same word count");
      services_.push_back(std::make_unique<Service>(*backend, cfg_.service));
    }
  }

  ShardedSnapshotFabric(const ShardedSnapshotFabric&) = delete;
  ShardedSnapshotFabric& operator=(const ShardedSnapshotFabric&) = delete;

  std::size_t shards() const { return services_.size(); }
  std::size_t words_per_shard() const { return words_per_shard_; }
  /// Total fabric word space (checker history width).
  std::size_t words() const { return shards() * words_per_shard_; }

  /// Deterministic, stateless client routing (splitmix64 over the id).
  std::size_t shard_of(svc::ClientId client) const {
    std::uint64_t x = client + cfg_.route_seed + 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x % services_.size());
  }

  /// Lease a slot in the client's home shard (FIFO behind earlier clients
  /// of that shard, same semantics as SnapshotService::connect).
  ConnectResult connect(svc::ClientId client, std::chrono::nanoseconds timeout) {
    const std::size_t sh = shard_of(client);
    auto r = services_[sh]->connect(client, timeout);
    if (r.error != svc::SvcError::kOk) return {r.error, {}};
    ConnectResult out;
    out.session.shard_ = sh;
    out.session.base_ = sh * words_per_shard_;
    out.session.inner_ = r.session;
    ASNAP_TRACE_EVENT(trace::EventKind::kShardRoute,
                      static_cast<std::uint32_t>(sh),
                      static_cast<std::uint64_t>(client),
                      static_cast<std::uint64_t>(out.session.slot()));
    return out;
  }

  /// Buffer one update into the session's slot batch. make(word, seq) is
  /// called with the GLOBAL word index, so stored values (and their history
  /// tags) are unique across the whole fabric.
  template <typename MakeValue>
  OpResult submit_update(Session& sess, MakeValue&& make) {
    const std::size_t base = sess.base_;
    auto r = services_[sess.shard_]->submit_update(
        sess.inner_, [&](ProcessId local, std::uint64_t seq) {
          return make(static_cast<ProcessId>(base + local), seq);
        });
    if (r.error == svc::SvcError::kOk) {
      ASNAP_TRACE_EVENT(trace::EventKind::kShardLocalUpdate,
                        static_cast<std::uint32_t>(sess.shard_),
                        static_cast<std::uint64_t>(sess.slot()));
    }
    return r;
  }

  OpResult flush(Session& sess) { return services_[sess.shard_]->flush(sess.inner_); }

  /// Shard-local atomic snapshot (the session's own shard only) — the cheap
  /// read path when a client only cares about its own key range.
  ScanResult scan(Session& sess) {
    auto r = services_[sess.shard_]->scan(sess.inner_);
    ASNAP_TRACE_EVENT(trace::EventKind::kShardLocalScan,
                      static_cast<std::uint32_t>(sess.shard_),
                      r.cache_hit ? 1 : 0);
    return {r.error, std::move(r.view), sess.base_, r.cache_hit,
            r.flushed_through};
  }

  /// Globally consistent scan across every shard (two-level snapshot; see
  /// the header comment). Lease-free: any thread may call it. Always
  /// succeeds — after max_global_attempts unconfirmed rounds it seals the
  /// fabric and reads the exact quiescent state.
  GlobalScanResult global_scan() {
    const std::size_t S = services_.size();
    ASNAP_TRACE_EVENT(trace::EventKind::kShardGlobalScanBegin, 0,
                      static_cast<std::uint64_t>(S),
                      static_cast<std::uint64_t>(cfg_.max_global_attempts));
    fabric_counters_.global_scans.fetch_add(1, std::memory_order_relaxed);

    GlobalScanResult out;
    std::vector<std::uint64_t> g1(S);
    std::vector<std::vector<T>> views(S);
    for (std::size_t attempt = 0; attempt < cfg_.max_global_attempts;
         ++attempt) {
      ++out.attempts;
      fabric_counters_.global_scan_attempts.fetch_add(
          1, std::memory_order_relaxed);
      // Collect 1: the generation vector (level-2 words).
      for (std::size_t s = 0; s < S; ++s) g1[s] = services_[s]->generation();
      // Level-1 scans, one per shard (cache-served when generation-current).
      for (std::size_t s = 0; s < S; ++s) {
        views[s] = std::move(services_[s]->shared_scan().view);
      }
      // Collect 2: confirm no shard's generation moved across the window.
      std::size_t moved = 0;
      for (std::size_t s = 0; s < S; ++s) {
        const std::uint64_t g2 = services_[s]->generation();
        if (g2 != g1[s]) {
          ++moved;
          ASNAP_TRACE_EVENT(trace::EventKind::kShardConfirmFail,
                            static_cast<std::uint32_t>(s), g1[s], g2);
        }
      }
      if (moved == 0) {
        out.view = assemble(views);
        ASNAP_TRACE_EVENT(trace::EventKind::kShardGlobalScanEnd, 0,
                          out.attempts, 0);
        return out;
      }
      fabric_counters_.global_confirm_failures.fetch_add(
          moved, std::memory_order_relaxed);
    }

    // Sealed fallback: quiesce every shard (index order), then the state
    // cannot move while we read it — a true global linearization point
    // exists at any instant all seals are held.
    {
      std::vector<typename Service::ScanSeal> seals;
      seals.reserve(S);
      for (std::size_t s = 0; s < S; ++s) {
        seals.push_back(services_[s]->seal_for_scan());
      }
      for (std::size_t s = 0; s < S; ++s) {
        views[s] = services_[s]->sealed_scan(seals[s]);
      }
    }
    fabric_counters_.sealed_scans.fetch_add(1, std::memory_order_relaxed);
    out.sealed = true;
    out.view = assemble(views);
    ASNAP_TRACE_EVENT(trace::EventKind::kShardGlobalScanEnd, 0, out.attempts,
                      1);
    return out;
  }

  /// Flush pending updates and return the lease (semantics of
  /// SnapshotService::disconnect).
  OpResult disconnect(Session& sess) {
    return services_[sess.shard_]->disconnect(sess.inner_);
  }

  std::uint64_t generation(std::size_t shard) const {
    return services_[shard]->generation();
  }

  Service& service(std::size_t shard) { return *services_[shard]; }
  const Service& service(std::size_t shard) const { return *services_[shard]; }

  FabricStats fabric_stats() const {
    FabricStats out;
    out.global_scans =
        fabric_counters_.global_scans.load(std::memory_order_relaxed);
    out.global_scan_attempts =
        fabric_counters_.global_scan_attempts.load(std::memory_order_relaxed);
    out.global_confirm_failures = fabric_counters_.global_confirm_failures.load(
        std::memory_order_relaxed);
    out.sealed_scans =
        fabric_counters_.sealed_scans.load(std::memory_order_relaxed);
    return out;
  }

  /// Service counters summed across shards (same shape as one service's).
  svc::ServiceStats stats() const {
    svc::ServiceStats out;
    for (const auto& service : services_) {
      const svc::ServiceStats s = service->stats();
      out.connects += s.connects;
      out.disconnects += s.disconnects;
      out.submits += s.submits;
      out.flushes += s.flushes;
      out.coalesced += s.coalesced;
      out.scans += s.scans;
      out.cache_hits += s.cache_hits;
      out.cache_misses += s.cache_misses;
      out.sheds += s.sheds;
      out.lease_expired_errors += s.lease_expired_errors;
    }
    return out;
  }

  /// Lease counters summed across shards.
  svc::LeaseStats lease_stats() const {
    svc::LeaseStats out;
    for (const auto& service : services_) {
      const svc::LeaseStats s =
          const_cast<Service&>(*service).lease_manager().stats();
      out.grants += s.grants;
      out.steals += s.steals;
      out.releases += s.releases;
      out.renewals += s.renewals;
      out.timeouts += s.timeouts;
      out.queue_rejections += s.queue_rejections;
    }
    return out;
  }

 private:
  std::vector<T> assemble(std::vector<std::vector<T>>& views) {
    std::vector<T> out;
    out.reserve(words());
    for (auto& v : views) {
      for (auto& value : v) out.push_back(std::move(value));
    }
    return out;
  }

  struct FabricCounters {
    std::atomic<std::uint64_t> global_scans{0};
    std::atomic<std::uint64_t> global_scan_attempts{0};
    std::atomic<std::uint64_t> global_confirm_failures{0};
    std::atomic<std::uint64_t> sealed_scans{0};
  };

  FabricConfig cfg_;
  std::vector<std::unique_ptr<Backend>> backends_;
  std::size_t words_per_shard_ = 0;
  std::vector<std::unique_ptr<Service>> services_;
  FabricCounters fabric_counters_;
};

}  // namespace asnap::shard
