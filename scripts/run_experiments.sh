#!/usr/bin/env bash
# Regenerates every experiment in EXPERIMENTS.md: builds, runs the full test
# suite, then every benchmark binary, teeing outputs under results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

mkdir -p results

echo "== tests =="
ctest --test-dir build 2>&1 | tee results/ctest.txt | tail -3

# The lossy-network fault matrix (ctest label `fault`) re-runs under
# ThreadSanitizer: the retry/timeout/backoff paths in abd/ and the
# held-message pump in net/ are exactly where data races would hide.
echo "== fault matrix under TSan =="
cmake -B build-tsan -G Ninja -DASNAP_SANITIZE=thread
cmake --build build-tsan
ctest --test-dir build-tsan -L fault --output-on-failure 2>&1 \
  | tee results/ctest_fault_tsan.txt | tail -3

for b in build/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "== $name =="
  # google-benchmark binaries honor the flag; the table binaries ignore argv.
  "$b" --benchmark_min_time=0.05 2>&1 | tee "results/$name.txt"
done

echo
echo "Outputs captured under results/. Update EXPERIMENTS.md from them."
