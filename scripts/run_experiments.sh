#!/usr/bin/env bash
# Regenerates every experiment in EXPERIMENTS.md: builds, runs the full test
# suite, then every benchmark binary, teeing outputs under results/.
#
# Options:
#   --trace-dir <dir>   also capture protocol traces: the instrumented
#                       benches get --trace <dir>/<bench>.json, and each
#                       trace is fed through tools/trace_analyze (which
#                       fails the run if any scan exceeded its pigeonhole
#                       bound). The JSON files load directly in Perfetto.
set -euo pipefail
cd "$(dirname "$0")/.."

TRACE_DIR=""
while [ $# -gt 0 ]; do
  case "$1" in
    --trace-dir)
      TRACE_DIR="$2"
      shift 2
      ;;
    *)
      echo "unknown option: $1" >&2
      exit 2
      ;;
  esac
done
[ -n "$TRACE_DIR" ] && mkdir -p "$TRACE_DIR"

# Benches wired for --trace (see bench/*.cpp headers).
traced_bench() {
  case "$1" in
    bench_scan_latency|bench_throughput|bench_abd_messages) return 0 ;;
    *) return 1 ;;
  esac
}

cmake -B build -G Ninja
cmake --build build

mkdir -p results

echo "== tests =="
ctest --test-dir build 2>&1 | tee results/ctest.txt | tail -3

# The lossy-network fault matrix (label `fault`), the tracing rings
# (`trace`), the self-healing/chaos layer (`chaos`), the service layer
# (`svc`), the sharded fabric (`shard`) and the multi-version scan engine
# (`mvcc`) re-run under ThreadSanitizer: retry/timeout/backoff paths in
# abd/, the held-message pump in net/, the SPSC trace rings, the
# detector/supervisor/breaker threads, the lease seal/epoch handover +
# versioned scan cache, the fabric's generation-vector double collect +
# all-slot seal, and the VersionGate's packed refcount/pointer handoff are
# exactly where data races would hide.
echo "== fault+trace+chaos+svc+shard+netchaos+mvcc+fastread matrix under TSan =="
cmake -B build-tsan -G Ninja -DASNAP_SANITIZE=thread
cmake --build build-tsan
ctest --test-dir build-tsan -L "fault|trace|chaos|svc|shard|netchaos|mvcc|fastread" --output-on-failure 2>&1 \
  | tee results/ctest_fault_tsan.txt | tail -3

for b in build/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "== $name =="
  trace_args=()
  if [ -n "$TRACE_DIR" ] && traced_bench "$name"; then
    trace_args=(--trace "$TRACE_DIR/$name.json")
  fi
  # google-benchmark binaries honor the flag; the table binaries ignore argv.
  # ${arr[@]+...} keeps `set -u` happy when the array is empty (bash < 4.4).
  "$b" --benchmark_min_time=0.05 ${trace_args[@]+"${trace_args[@]}"} 2>&1 \
    | tee "results/$name.txt"
done

# E10 — chaos resilience: self-healing cluster under sustained fault
# injection. The 10s mixed scenario is the PR's acceptance gate (chaos_run
# exits nonzero on any safety violation or liveness flag, and set -e stops
# the script); breaker-ab isolates what the circuit breaker buys; the
# crash-rate x loss-rate sweep maps availability and tail latency. JSON
# lines land in results/chaos_resilience.jsonl.
echo "== E10: chaos resilience =="
chaos_trace_args=()
if [ -n "$TRACE_DIR" ]; then
  chaos_trace_args=(--trace "$TRACE_DIR/chaos_run.json")
fi
{
  build/tools/chaos_run --scenario mixed --seconds 10 --seed 42 \
    ${chaos_trace_args[@]+"${chaos_trace_args[@]}"}
  build/tools/chaos_run --scenario breaker-ab --seconds 3 --seed 42
  for crash in 1 4; do
    for loss in 0 0.1 0.3; do
      build/tools/chaos_run --scenario mixed --seconds 3 --seed 42 \
        --crash-rate "$crash" --loss "$loss"
    done
  done
} 2>&1 | tee results/chaos_resilience.txt
grep '^JSON ' results/chaos_resilience.txt | sed 's/^JSON //' \
  > results/chaos_resilience.jsonl

# E11-svc — service layer under load: M clients (n, 4n, 16n for n = 4 slots)
# multiplexed over A2 across read ratios, every run --check'ed by the exact
# single-writer linearizability checker (nonzero exit on violation stops the
# script). The cache on/off A-B at read ratio 0.99 isolates what the
# generation-validated scan cache buys; the open-loop run shows latency from
# scheduled arrival at a fixed rate. JSON lines land in
# results/svc_loadgen.jsonl.
echo "== E11-svc: service layer load generator =="
svc_trace_args=()
if [ -n "$TRACE_DIR" ]; then
  svc_trace_args=(--trace "$TRACE_DIR/loadgen.json")
fi
{
  for clients in 4 16 64; do
    for ratio in 0.5 0.9 0.99; do
      build/tools/loadgen --backend a2 --slots 4 --clients "$clients" \
        --seconds 1 --read-ratio "$ratio" --churn 0.02 --seed 42 --check
    done
  done
  # A-B: the scan cache at a read-mostly mix, same seed and duration.
  build/tools/loadgen --backend a2 --slots 4 --clients 16 --seconds 1 \
    --read-ratio 0.99 --churn 0.02 --seed 43 --cache off --check
  build/tools/loadgen --backend a2 --slots 4 --clients 16 --seconds 1 \
    --read-ratio 0.99 --churn 0.02 --seed 43 --cache on --check
  # Open loop at a fixed arrival rate over A1 (latency incl. queueing),
  # traced when --trace-dir is given so trace_analyze's service section
  # has real loadgen data.
  build/tools/loadgen --backend a1 --mode open --rate 5000 --slots 4 \
    --clients 16 --seconds 1 --read-ratio 0.9 --churn 0.02 --seed 42 \
    --check ${svc_trace_args[@]+"${svc_trace_args[@]}"}
} 2>&1 | tee results/svc_loadgen.txt
grep '^JSON ' results/svc_loadgen.txt | sed 's/^JSON //' \
  > results/svc_loadgen.jsonl

# E13-shard — sharded fabric scaling: the same checked workload (A2, n = 4
# slots per shard, read ratio 0.5, 10% of reads cross-shard global scans)
# swept over S in {1,2,4,8} shards x M in {16, 64, 256} clients. Every run
# is --check'ed (including the global scans' full-width views), so a
# violation stops the script; the M=256 rows (16x the S=4 fabric's 16
# global words — the regime where E11 showed a single service collapsing)
# are where the S=4 vs S=1 update-throughput acceptance ratio is computed
# (measured 3.1x, bar is 2.5x; see EXPERIMENTS.md E13-shard). JSON lines
# land in results/shard_loadgen.jsonl.
echo "== E13-shard: sharded fabric scaling =="
shard_trace_args=()
if [ -n "$TRACE_DIR" ]; then
  shard_trace_args=(--trace "$TRACE_DIR/loadgen_shard.json")
fi
{
  for shards in 1 2 4 8; do
    for clients in 16 64 256; do
      build/tools/loadgen --backend a2 --slots 4 --shards "$shards" \
        --clients "$clients" --seconds 1 --read-ratio 0.5 \
        --global-ratio 0.1 --churn 0.02 --seed 42 \
        --experiment E13-shard --check
    done
  done
  # Long-run memory fix in action: the checked history streams to disk
  # (--check-file) instead of accumulating in RAM, then replays through the
  # same exact checker; the spill file doubles as a check_history artifact.
  build/tools/loadgen --backend a2 --slots 4 --shards 4 --clients 64 \
    --seconds 2 --read-ratio 0.5 --global-ratio 0.1 --churn 0.02 --seed 43 \
    --experiment E13-shard --check-file results/shard_history_spill.txt \
    ${shard_trace_args[@]+"${shard_trace_args[@]}"}
} 2>&1 | tee results/shard_loadgen.txt
grep '^JSON ' results/shard_loadgen.txt | sed 's/^JSON //' \
  > results/shard_loadgen.jsonl

# E14-netchaos — the real cluster behind the seeded TCP fault proxy: the
# ambient loss x delay sweep maps update throughput and round-trip tails as
# the wire degrades, with the partition dimension toggling blackhole/flap
# bursts on top. Every cell runs the full rails (exact linearizability,
# majority-safety, durability audit, liveness watchdog) and chaos_run exits
# nonzero on any violation, so set -e makes every cell an acceptance gate.
# The net+kill composition and the MUST-FAIL minority-split negative control
# (`!` inverts its expected nonzero exit) close the loop: the checkers keep
# their teeth when the network is the adversary. JSON lines land in
# results/netchaos.jsonl.
echo "== E14-netchaos: cluster under the seeded TCP fault proxy =="
netchaos_trace_args=()
if [ -n "$TRACE_DIR" ]; then
  netchaos_trace_args=(--trace "$TRACE_DIR/chaos_net.json")
fi
{
  for loss in 0 0.01 0.05; do
    for delay in 0 5 25; do
      for part in on off; do
        build/tools/chaos_run --scenario net --seconds 2 --writers 2 \
          --seed 42 --loss "$loss" --delay-ms "$delay" --jitter-ms 2 \
          --reorder 0.01 --partition "$part"
      done
    done
  done
  # Wire faults composed with the kill -9 / SIGSTOP process adversary,
  # traced when --trace-dir is given so trace_analyze's network-chaos
  # section has real injected-fault -> retransmit-wave data.
  build/tools/chaos_run --scenario net+kill --seconds 3 --writers 2 \
    --seed 42 --crash-rate 1 --loss 0.05 --delay-ms 5 --jitter-ms 2 \
    --reorder 0.01 ${netchaos_trace_args[@]+"${netchaos_trace_args[@]}"}
  # Negative control: a minority-only cluster must be CAUGHT (nonzero
  # exit), proving the rails detect real partition-safety violations.
  ! build/tools/chaos_run --scenario net-split --seconds 2 --writers 2 \
    --seed 42
} 2>&1 | tee results/netchaos.txt
grep '^JSON ' results/netchaos.txt | sed 's/^JSON //' \
  > results/netchaos.jsonl

# E15-mvcc — the multi-version scan engine head-to-head: bench_mvcc sweeps
# engine x read ratio x thread count over the same 256-word snapshot
# (mvcc-leased vs mvcc-copy vs urcu vs the PR-4 copy-under-mutex cache);
# the leased scan's p50 and the throughput ratio vs mutex-cache at 16
# threads are the PR's acceptance numbers (see EXPERIMENTS.md E15-mvcc).
# The checked loadgen runs close the loop on correctness: A4 behind the
# full service stack (and behind the sharded fabric's cross-shard global
# scans) with every history replayed through the exact single-writer
# linearizability checker — a violation exits nonzero and set -e stops
# the script. JSON lines land in results/mvcc.jsonl.
echo "== E15-mvcc: multi-version scan engine =="
mvcc_trace_args=()
if [ -n "$TRACE_DIR" ]; then
  mvcc_trace_args=(--trace "$TRACE_DIR/bench_mvcc.json")
fi
{
  build/bench/bench_mvcc --seconds 0.3 --threads 1,4,16,64 \
    --ratios 0.5,0.9,0.99 ${mvcc_trace_args[@]+"${mvcc_trace_args[@]}"}
  for ratio in 0.5 0.9 0.99; do
    build/tools/loadgen --backend a4 --slots 4 --clients 16 --seconds 1 \
      --read-ratio "$ratio" --churn 0.02 --seed 42 \
      --experiment E15-mvcc --check
  done
  build/tools/loadgen --backend a4 --slots 4 --shards 4 --clients 64 \
    --seconds 1 --read-ratio 0.5 --global-ratio 0.1 --churn 0.02 \
    --seed 42 --experiment E15-mvcc --check
} 2>&1 | tee results/mvcc.txt
grep '^JSON ' results/mvcc.txt | sed 's/^JSON //' > results/mvcc.jsonl

# E16-fastread — the one-round fast read: the read-ratio x loss x delay
# sweep with per-cell exact linearizability checking lives in
# bench_abd_messages (its E16 JSON lines, incl. the A/B acceptance pair at
# read ratio 0.99, were captured by the bench loop above and are re-emitted
# into results/fastread.jsonl here). The chaos_run arms exercise the fast
# path through the full rails: the in-process mixed scenario and the real
# socket cluster behind the fault proxy, each as a fast on/off A-B (every
# run exits nonzero on any safety violation, so set -e gates on them), and
# the MUST-FAIL negative control — the unconditional write-back skip under
# a deterministic partition schedule — must be CAUGHT by the exact checker
# (`!` inverts its expected nonzero exit).
echo "== E16-fastread: one-round fast reads =="
{
  build/tools/chaos_run --scenario mixed --seconds 3 --seed 42 --fast off
  build/tools/chaos_run --scenario mixed --seconds 3 --seed 42 --fast on
  build/tools/chaos_run --scenario net --seconds 2 --writers 2 --seed 42 \
    --loss 0.01 --delay-ms 5 --jitter-ms 2 --fast off
  build/tools/chaos_run --scenario net --seconds 2 --writers 2 --seed 42 \
    --loss 0.01 --delay-ms 5 --jitter-ms 2 --fast on
  build/tools/chaos_run --scenario net+kill --seconds 2 --writers 2 \
    --seed 42 --crash-rate 1 --loss 0.01 --delay-ms 5 --jitter-ms 2
  # Checked read-heavy service runs over the in-process ABD backend: the
  # fast-hit ratio lands in the JSON, the exact checker gates the history.
  for ratio in 0.9 0.99; do
    build/tools/loadgen --backend abd --slots 3 --clients 6 --seconds 1 \
      --read-ratio "$ratio" --seed 42 --experiment E16-fastread --check
  done
  ! build/tools/chaos_run --scenario broken-fastread --seed 42
} 2>&1 | tee results/fastread.txt
{
  grep '^JSON ' results/fastread.txt | sed 's/^JSON //'
  grep '^JSON ' results/bench_abd_messages.txt | sed 's/^JSON //' \
    | grep 'E16-fastread' || true
} > results/fastread.jsonl

if [ -n "$TRACE_DIR" ]; then
  echo "== trace analysis =="
  for t in "$TRACE_DIR"/*.json; do
    [ -f "$t" ] || continue
    echo "-- $(basename "$t") --"
    build/tools/trace_analyze "$t" 2>&1 \
      | tee "results/trace_analyze_$(basename "$t" .json).txt"
  done
fi

echo
echo "Outputs captured under results/. Update EXPERIMENTS.md from them."
